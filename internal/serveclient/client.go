// Package serveclient is the typed Go client for the hpacml-serve HTTP
// API (internal/serveapi). It owns everything a caller would
// otherwise hand-roll: request/response marshalling on either wire
// (JSON by default, the binary frame protocol under
// WithWire(WireBinary), with automatic JSON fallback against older
// servers), connection pooling tuned for many small POSTs against one
// host, context propagation so deadlines and cancellation reach the
// wire, and the mapping of non-200 responses into a structured
// *APIError callers can classify without string matching.
//
// The runtime's remote inference engine (hpacml.RemoteEngine), its
// remote capture sink (hpacml.RemoteSink), and the serving load
// generator are all built on this client.
package serveclient

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync/atomic"
	"time"

	"repro/internal/serveapi"
)

// APIError is a non-200 answer from the server, carrying the HTTP
// status and the server's error message. Classify with errors.As plus
// the Code field (429 is backpressure, 404 an unknown model, 400 a
// malformed request, 503 shutdown), or with the Rejected helper.
// Accepted is non-zero only for failed capture batches: how many
// leading records the server durably appended before failing.
// RequestID is the X-Request-ID the failed call carried (from the
// server's error body, or the echoed response header): quote it when
// reporting the failure and the matching server log line is one grep
// away.
type APIError struct {
	Code      int
	Message   string
	Accepted  int
	RequestID string
}

func (e *APIError) Error() string {
	if e.RequestID != "" {
		return fmt.Sprintf("serveclient: server answered %d: %s (request %s)", e.Code, e.Message, e.RequestID)
	}
	return fmt.Sprintf("serveclient: server answered %d: %s", e.Code, e.Message)
}

// Rejected reports whether err is the server's queue-full backpressure
// refusal (HTTP 429) — the one failure a load generator counts
// separately from real errors.
func Rejected(err error) bool {
	var api *APIError
	return errors.As(err, &api) && api.Code == http.StatusTooManyRequests
}

// Option configures a Client.
type Option func(*Client)

// WithHTTPClient substitutes the underlying *http.Client (tests, custom
// transports, proxies). The caller keeps responsibility for pooling.
func WithHTTPClient(h *http.Client) Option {
	return func(c *Client) { c.http = h }
}

// WithTimeout bounds every request end-to-end. Per-call contexts still
// apply; whichever expires first wins. Zero leaves requests unbounded
// except by their context.
func WithTimeout(d time.Duration) Option {
	return func(c *Client) { c.http.Timeout = d }
}

// Client talks to one hpacml-serve instance. It is safe for concurrent
// use; the default transport keeps idle connections to the server warm
// so steady-state inference traffic never pays connection setup.
type Client struct {
	base  string
	http  *http.Client
	wire  Wire
	dtype serveapi.Dtype // frame element encoding; zero value is DtypeF64

	// Wire negotiation state (see frameRejected): binaryOK latches once
	// a frame round-trip has succeeded, jsonOnly latches when the server
	// turns out not to speak frames.
	binaryOK atomic.Bool
	jsonOnly atomic.Bool
}

// New builds a client for the server at base (e.g.
// "http://127.0.0.1:8080"). A trailing slash is tolerated.
func New(base string, opts ...Option) *Client {
	c := &Client{
		base: strings.TrimRight(base, "/"),
		http: &http.Client{
			Transport: &http.Transport{
				MaxIdleConns:        64,
				MaxIdleConnsPerHost: 64,
				IdleConnTimeout:     90 * time.Second,
			},
		},
	}
	for _, opt := range opts {
		opt(c)
	}
	return c
}

// Base returns the server base URL the client was built with.
func (c *Client) Base() string { return c.base }

// CloseIdleConnections drops pooled connections (call when the client
// is retired; in-flight requests are unaffected).
func (c *Client) CloseIdleConnections() { c.http.CloseIdleConnections() }

// Infer runs one invocation of the named model.
func (c *Client) Infer(ctx context.Context, model string, in []float64) ([]float64, error) {
	if c.useBinary() {
		data, _, err := c.InferMatrix(ctx, model, 1, len(in), in, nil)
		return data, err
	}
	var resp serveapi.InferResponse
	err := c.post(ctx, "/v1/infer", serveapi.InferRequest{Model: model, Input: in}, &resp)
	if err != nil {
		return nil, err
	}
	if resp.Output == nil {
		return nil, fmt.Errorf("serveclient: server answered without an output vector")
	}
	return resp.Output, nil
}

// InferBatch runs several independent invocations in one request; the
// server submits them concurrently so they coalesce into micro-batches
// exactly like independent clients would. Outputs are returned in input
// order, one vector per input.
func (c *Client) InferBatch(ctx context.Context, model string, ins [][]float64) ([][]float64, error) {
	if len(ins) == 0 {
		return nil, nil
	}
	var resp serveapi.InferResponse
	err := c.post(ctx, "/v1/infer", serveapi.InferRequest{Model: model, Inputs: ins}, &resp)
	if err != nil {
		return nil, err
	}
	if len(resp.Outputs) != len(ins) {
		return nil, fmt.Errorf("serveclient: sent %d inputs, server answered %d outputs", len(ins), len(resp.Outputs))
	}
	return resp.Outputs, nil
}

// Capture ships a batch of capture records to the named capture
// database on the server's ingest endpoint (/v1/capture), returning
// how many records the server accepted. On error the count is still
// meaningful: a mid-batch server write failure reports the durably
// appended prefix (APIError.Accepted), so callers can count exactly
// what was lost. The runtime's remote capture sink (hpacml.RemoteSink)
// is built on this call. Under WithWire(WireBinary) the batch travels
// as a binary frame (the ack stays JSON), with the same fallback rules
// as InferMatrix.
func (c *Client) Capture(ctx context.Context, db string, recs []serveapi.CaptureRecord) (int, error) {
	if len(recs) == 0 {
		return 0, nil
	}
	if c.useBinary() {
		n, err := c.captureFrame(ctx, db, recs)
		if err == nil || !c.frameRejected(err) {
			return n, err
		}
		n, jerr := c.captureJSON(ctx, db, recs)
		if jerr == nil {
			c.jsonOnly.Store(true)
		}
		return n, jerr
	}
	return c.captureJSON(ctx, db, recs)
}

func (c *Client) captureJSON(ctx context.Context, db string, recs []serveapi.CaptureRecord) (int, error) {
	var resp serveapi.CaptureResponse
	if err := c.post(ctx, "/v1/capture", serveapi.CaptureRequest{DB: db, Records: recs}, &resp); err != nil {
		var api *APIError
		if errors.As(err, &api) {
			return api.Accepted, err
		}
		return 0, err
	}
	return resp.Accepted, nil
}

// Models lists the server's registry.
func (c *Client) Models(ctx context.Context) ([]serveapi.ModelInfo, error) {
	var infos []serveapi.ModelInfo
	if err := c.get(ctx, "/v1/models", &infos); err != nil {
		return nil, err
	}
	return infos, nil
}

// Model resolves one registry entry by name; an empty name picks the
// server's first model (the load generator's default).
func (c *Client) Model(ctx context.Context, name string) (serveapi.ModelInfo, error) {
	infos, err := c.Models(ctx)
	if err != nil {
		return serveapi.ModelInfo{}, err
	}
	if len(infos) == 0 {
		return serveapi.ModelInfo{}, fmt.Errorf("serveclient: %s hosts no models", c.base)
	}
	if name == "" {
		return infos[0], nil
	}
	for _, info := range infos {
		if info.Name == name {
			return info, nil
		}
	}
	return serveapi.ModelInfo{}, fmt.Errorf("serveclient: %s does not host model %q", c.base, name)
}

// Rollback asks the server's continuous-learning controller to
// restore the named model's parent generation (POST
// /v1/models/{model}/rollback). The response says which lineage
// generation the rollback created and which ancestor generation's
// weights are live again. 404 means the model has no learner, 409 that
// the live generation has no parent to return to.
func (c *Client) Rollback(ctx context.Context, model string) (serveapi.RollbackResponse, error) {
	var resp serveapi.RollbackResponse
	err := c.post(ctx, "/v1/models/"+model+"/rollback", struct{}{}, &resp)
	return resp, err
}

// Stats fetches the per-model serving stats.
func (c *Client) Stats(ctx context.Context) (serveapi.StatsResponse, error) {
	var sr serveapi.StatsResponse
	err := c.get(ctx, "/v1/stats", &sr)
	return sr, err
}

// ModelStats fetches one model's serving snapshot by name.
func (c *Client) ModelStats(ctx context.Context, name string) (serveapi.ModelSnapshot, error) {
	sr, err := c.Stats(ctx)
	if err != nil {
		return serveapi.ModelSnapshot{}, err
	}
	for i := range sr.Models {
		if sr.Models[i].Name == name {
			return sr.Models[i], nil
		}
	}
	return serveapi.ModelSnapshot{}, fmt.Errorf("serveclient: no stats for model %q", name)
}

// Health probes the server's liveness endpoint.
func (c *Client) Health(ctx context.Context) error {
	return c.get(ctx, "/healthz", &struct {
		Status string `json:"status"`
	}{})
}

// post sends a JSON body and decodes the JSON answer into out.
func (c *Client) post(ctx context.Context, path string, in, out any) error {
	body, err := json.Marshal(in)
	if err != nil {
		return fmt.Errorf("serveclient: %w", err)
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, c.base+path, bytes.NewReader(body))
	if err != nil {
		return fmt.Errorf("serveclient: %w", err)
	}
	req.Header.Set("Content-Type", "application/json")
	stampRequestID(req)
	return c.do(req, out)
}

// get fetches a JSON document into out.
func (c *Client) get(ctx context.Context, path string, out any) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+path, nil)
	if err != nil {
		return fmt.Errorf("serveclient: %w", err)
	}
	stampRequestID(req)
	return c.do(req, out)
}

// do executes the request, mapping non-200 statuses to *APIError and
// decoding 200 bodies into out. The body is always drained so the
// pooled connection stays reusable.
func (c *Client) do(req *http.Request, out any) error {
	resp, err := c.http.Do(req)
	if err != nil {
		return fmt.Errorf("serveclient: %s %s: %w", req.Method, req.URL.Path, err)
	}
	defer drainClose(resp.Body)
	if resp.StatusCode != http.StatusOK {
		return apiError(resp)
	}
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		return fmt.Errorf("serveclient: %s %s: bad payload: %w", req.Method, req.URL.Path, err)
	}
	return nil
}

// Bounds for reading non-200 answers. An error body larger than
// maxErrorBytes is truncated at decode; a leftover body larger than
// maxDrainBytes is abandoned (closing mid-body retires the connection
// instead of stalling to keep it — the right trade for a response that
// large).
const (
	maxErrorBytes = 64 << 10
	maxDrainBytes = 1 << 20
)

// drainClose empties and closes a response body. Every response path —
// success, server error, and bad-payload alike — must run it, or the
// transport cannot return the connection to the idle pool and the next
// request pays a fresh TCP (and TLS) setup.
func drainClose(body io.ReadCloser) {
	io.Copy(io.Discard, io.LimitReader(body, maxDrainBytes))
	body.Close()
}

// apiError decodes a non-200 response's JSON error body into *APIError.
// Error bodies are JSON on every wire, including the binary frame
// protocol. The read is bounded and the remainder is left for
// drainClose. The request ID comes from the error body when the server
// stamped one, the echoed response header otherwise.
func apiError(resp *http.Response) error {
	var eb serveapi.ErrorBody
	if derr := json.NewDecoder(io.LimitReader(resp.Body, maxErrorBytes)).Decode(&eb); derr != nil || eb.Error == "" {
		eb.Error = resp.Status
	}
	rid := eb.RequestID
	if rid == "" {
		rid = resp.Header.Get(serveapi.HeaderRequestID)
	}
	return &APIError{Code: resp.StatusCode, Message: eb.Error, Accepted: eb.Accepted, RequestID: rid}
}
