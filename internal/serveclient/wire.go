package serveclient

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sync"

	"repro/internal/serveapi"
)

// Wire selects the encoding the client uses on the two hot-path
// endpoints (/v1/infer and /v1/capture). Everything else — stats,
// model listings, health, error bodies — is JSON on either wire.
type Wire int

const (
	// WireJSON is the default: human-readable, curl-able, and accepted
	// by every server version.
	WireJSON Wire = iota
	// WireBinary sends binary frames (serveapi.ContentTypeFrame):
	// length-prefixed headers and raw float slabs, no per-value
	// formatting and near-zero garbage. Against a server that does not
	// speak frames the client falls back to JSON automatically and
	// remembers the downgrade, so WireBinary is always safe to request.
	WireBinary
)

func (w Wire) String() string {
	if w == WireBinary {
		return "binary"
	}
	return "json"
}

// WithWire selects the hot-path encoding (default WireJSON).
func WithWire(w Wire) Option {
	return func(c *Client) { c.wire = w }
}

// WithFrameDtype selects the element encoding of outgoing binary
// frames (default serveapi.DtypeF64). DtypeF32 halves the request
// payload; DtypeI8 shrinks it to a byte per element but rounds and
// saturates each value to [-128, 127] on encode, so it is only
// appropriate for integer-valued, small-range feature spaces. The
// server answers /v1/infer in the request's dtype, so this choice
// bounds the response precision too. It has no effect under WireJSON.
func WithFrameDtype(d serveapi.Dtype) Option {
	return func(c *Client) { c.dtype = d }
}

// useBinary reports whether the next hot-path request should be a
// frame: binary was requested and the server has not refused it.
func (c *Client) useBinary() bool {
	return c.wire == WireBinary && !c.jsonOnly.Load()
}

// frameRejected classifies a failed frame request: true means the
// status says "this server does not speak frames" and the call should
// be retried as JSON. 415 is the explicit refusal from frame-aware
// servers of another version, so the downgrade latches immediately. A
// 400 is ambiguous — a pre-frame server answers it after failing to
// parse the frame as JSON, but a frame-aware server also answers it
// for genuinely bad requests — so 400 only triggers a retry until the
// first successful frame round-trip proves the server speaks binary
// (the caller latches jsonOnly only if the JSON retry succeeds).
func (c *Client) frameRejected(err error) bool {
	var api *APIError
	if !errors.As(err, &api) {
		return false
	}
	if api.Code == http.StatusUnsupportedMediaType {
		c.jsonOnly.Store(true)
		return true
	}
	return api.Code == http.StatusBadRequest && !c.binaryOK.Load()
}

// frameBuf is the per-request scratch a frame round-trip needs: the
// encoded request and the raw response body. Pooled so steady-state
// binary traffic reuses the same two byte slabs per concurrent caller.
type frameBuf struct {
	enc  []byte
	body []byte
}

var framePool = sync.Pool{New: func() any { return new(frameBuf) }}

// InferMatrix runs rows independent invocations of the named model in
// one request, taking the inputs as a flat row-major [rows, cols] slab
// and answering the outputs the same way: the returned data is the
// [rows, outCols] output slab, decoded into out's storage when it is
// large enough (pass a reused scratch slice to make steady-state calls
// allocation-free; its length is ignored). This is the hot-path entry
// the remote engine and the load generator use; under WireJSON, or
// when a binary-unaware server forces a fallback, the same call
// travels as JSON.
func (c *Client) InferMatrix(ctx context.Context, model string, rows, cols int, in, out []float64) ([]float64, int, error) {
	if rows < 0 || cols < 0 || len(in) != rows*cols {
		return nil, 0, fmt.Errorf("serveclient: input slab %d floats, want %d x %d", len(in), rows, cols)
	}
	if rows == 0 {
		return out[:0], 0, nil
	}
	if c.useBinary() {
		data, outCols, err := c.inferMatrixFrame(ctx, model, rows, cols, in, out)
		if err == nil || !c.frameRejected(err) {
			return data, outCols, err
		}
		data, outCols, jerr := c.inferMatrixJSON(ctx, model, rows, cols, in, out)
		if jerr == nil {
			c.jsonOnly.Store(true)
		}
		return data, outCols, jerr
	}
	return c.inferMatrixJSON(ctx, model, rows, cols, in, out)
}

func (c *Client) inferMatrixFrame(ctx context.Context, model string, rows, cols int, in, out []float64) ([]float64, int, error) {
	fb := framePool.Get().(*frameBuf)
	defer framePool.Put(fb)
	var err error
	if fb.enc, err = serveapi.AppendInferRequest(fb.enc[:0], c.dtype, model, rows, cols, in); err != nil {
		return nil, 0, fmt.Errorf("serveclient: %w", err)
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, c.base+"/v1/infer", bytes.NewReader(fb.enc))
	if err != nil {
		return nil, 0, fmt.Errorf("serveclient: %w", err)
	}
	req.Header.Set("Content-Type", serveapi.ContentTypeFrame)
	stampRequestID(req)
	resp, err := c.http.Do(req)
	if err != nil {
		return nil, 0, fmt.Errorf("serveclient: POST /v1/infer: %w", err)
	}
	defer drainClose(resp.Body)
	if resp.StatusCode != http.StatusOK {
		return nil, 0, apiError(resp)
	}
	if fb.body, err = readBody(resp, fb.body); err != nil {
		return nil, 0, fmt.Errorf("serveclient: POST /v1/infer: %w", err)
	}
	f, err := serveapi.DecodeInferResponse(fb.body, out)
	if err != nil {
		return nil, 0, fmt.Errorf("serveclient: POST /v1/infer: bad frame: %w", err)
	}
	if f.Rows != rows {
		return nil, 0, fmt.Errorf("serveclient: sent %d rows, server answered %d", rows, f.Rows)
	}
	c.binaryOK.Store(true)
	return f.Data, f.Cols, nil
}

func (c *Client) inferMatrixJSON(ctx context.Context, model string, rows, cols int, in, out []float64) ([]float64, int, error) {
	ins := make([][]float64, rows)
	for i := range ins {
		ins[i] = in[i*cols : (i+1)*cols]
	}
	var resp serveapi.InferResponse
	if err := c.post(ctx, "/v1/infer", serveapi.InferRequest{Model: model, Inputs: ins}, &resp); err != nil {
		return nil, 0, err
	}
	if len(resp.Outputs) != rows {
		return nil, 0, fmt.Errorf("serveclient: sent %d inputs, server answered %d outputs", rows, len(resp.Outputs))
	}
	outCols := len(resp.Outputs[0])
	if cap(out) < rows*outCols {
		out = make([]float64, 0, rows*outCols)
	}
	out = out[:0]
	for i, row := range resp.Outputs {
		if len(row) != outCols {
			return nil, 0, fmt.Errorf("serveclient: ragged response: row %d has %d values, row 0 has %d", i, len(row), outCols)
		}
		out = append(out, row...)
	}
	return out, outCols, nil
}

// captureFrame ships the batch as a capture frame; the ack (and any
// error body) is JSON.
func (c *Client) captureFrame(ctx context.Context, db string, recs []serveapi.CaptureRecord) (int, error) {
	fb := framePool.Get().(*frameBuf)
	defer framePool.Put(fb)
	var err error
	if fb.enc, err = serveapi.AppendCaptureRequest(fb.enc[:0], c.dtype, db, recs); err != nil {
		return 0, fmt.Errorf("serveclient: %w", err)
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, c.base+"/v1/capture", bytes.NewReader(fb.enc))
	if err != nil {
		return 0, fmt.Errorf("serveclient: %w", err)
	}
	req.Header.Set("Content-Type", serveapi.ContentTypeFrame)
	stampRequestID(req)
	resp, err := c.http.Do(req)
	if err != nil {
		return 0, fmt.Errorf("serveclient: POST /v1/capture: %w", err)
	}
	defer drainClose(resp.Body)
	if resp.StatusCode != http.StatusOK {
		err := apiError(resp)
		var api *APIError
		errors.As(err, &api)
		return api.Accepted, err
	}
	var ack serveapi.CaptureResponse
	if err := json.NewDecoder(resp.Body).Decode(&ack); err != nil {
		return 0, fmt.Errorf("serveclient: POST /v1/capture: bad payload: %w", err)
	}
	c.binaryOK.Store(true)
	return ack.Accepted, nil
}

// readBody reads the whole response body into buf's storage (grown as
// needed), so pooled frame buffers absorb the read instead of a fresh
// io.ReadAll allocation per response. The Content-Length header sizes
// the pre-allocation only up to the frame cap — no valid response frame
// is bigger, and a buggy or hostile server shouldn't get to pick an
// arbitrary allocation size.
func readBody(resp *http.Response, buf []byte) ([]byte, error) {
	buf = buf[:0]
	if n := resp.ContentLength; n > 0 && n <= serveapi.MaxFrameLen && int64(cap(buf)) < n {
		buf = make([]byte, 0, n)
	}
	for {
		if len(buf) == cap(buf) {
			buf = append(buf, 0)[:len(buf)]
		}
		n, err := resp.Body.Read(buf[len(buf):cap(buf)])
		buf = buf[:len(buf)+n]
		if err == io.EOF {
			return buf, nil
		}
		if err != nil {
			return buf, err
		}
	}
}
