package serveclient

import (
	"context"
	"net/http"

	"repro/internal/serveapi"
)

// Request tracing: every request the client sends carries an
// X-Request-ID header. Callers that want to correlate a call with the
// server's structured logs (or with an error report of their own) put
// an ID in the context with WithRequestID; otherwise the client mints
// one, so the server side is always traceable. The server echoes the
// ID on the response and stamps it into error bodies, where it comes
// back as APIError.RequestID.

// ridKey is the context key for a caller-chosen request ID.
type ridKey struct{}

// WithRequestID returns a context whose client calls carry id as their
// X-Request-ID header instead of a minted one.
func WithRequestID(ctx context.Context, id string) context.Context {
	return context.WithValue(ctx, ridKey{}, id)
}

// RequestIDFrom extracts a request ID previously attached with
// WithRequestID.
func RequestIDFrom(ctx context.Context) (string, bool) {
	id, ok := ctx.Value(ridKey{}).(string)
	return id, ok && id != ""
}

// stampRequestID sets the request's X-Request-ID header — the
// context-attached ID when there is one, a freshly minted one
// otherwise — and returns the ID used.
func stampRequestID(req *http.Request) string {
	id, ok := RequestIDFrom(req.Context())
	if !ok {
		id = serveapi.NewRequestID()
	}
	req.Header.Set(serveapi.HeaderRequestID, id)
	return id
}
