// Package miniweather is a Go port of the MiniWeather mini-app (Norman):
// 2-D dry compressible Euler dynamics with a hydrostatic background,
// solved by dimensionally split, 4th-order finite-volume fluxes with
// hyperviscosity and a three-substep low-storage integrator — the
// essential weather/climate dynamical core the paper uses to study
// auto-regressive surrogate error (Observation 4, Figure 9).
//
// The prognostic state holds perturbation density, x-momentum,
// z-momentum, and density-weighted potential temperature on an nx×nz
// grid (periodic in x, solid walls in z) initialized with a warm thermal
// bubble.
//
// QoI: the state variables at every gridpoint. Metric: RMSE (Table I).
package miniweather

import (
	"fmt"
	"math"

	"repro/internal/device"
)

// Physical constants (matching the reference implementation).
const (
	grav   = 9.8
	cp     = 1004.0
	cv     = 717.0
	rd     = 287.0
	p0     = 1.0e5
	theta0 = 300.0
	gamma  = cp / cv
)

// c0 is the pressure constant: p = c0 * (rho*theta)^gamma.
var c0 = math.Pow(rd*math.Pow(p0, -rd/cp), gamma)

// Variable indices within the state vector.
const (
	IDDens = 0 // perturbation density
	IDUMom = 1 // x-momentum
	IDWMom = 2 // z-momentum
	IDRhoT = 3 // perturbation (rho * potential temperature)

	NumVars = 4
	hs      = 2 // halo width
)

// Config sizes the simulation.
type Config struct {
	NX, NZ int
	XLen   float64
	ZLen   float64
	CFL    float64
	Seed   int64
}

// DefaultConfig is a bubble-resolving grid small enough for surrogate
// training campaigns.
func DefaultConfig() Config {
	return Config{NX: 64, NZ: 32, XLen: 2.0e4, ZLen: 1.0e4, CFL: 0.9}
}

// Instance is one simulation: state arrays (with halos), the hydrostatic
// background, and the timestep machinery.
type Instance struct {
	Cfg        Config
	dx, dz, dt float64

	// State is [NumVars][NZ+2hs][NX+2hs], row-major, perturbations from
	// the hydrostatic background. The HPAC-ML region maps its interior.
	State []float64
	tmp   []float64
	tend  []float64

	// Hydrostatic background profiles.
	hyDensCell      []float64 // at cell centers, with halos
	hyDensThetaCell []float64
	hyDensInt       []float64 // at z-interfaces
	hyDensThetaInt  []float64
	hyPressureInt   []float64

	directionSwitch bool
	dev             *device.Device
}

// New builds an initialized simulation with the thermal-bubble initial
// condition.
func New(cfg Config) (*Instance, error) {
	if cfg.NX < 8 || cfg.NZ < 8 {
		return nil, fmt.Errorf("miniweather: grid must be at least 8x8, got %dx%d", cfg.NX, cfg.NZ)
	}
	if cfg.XLen <= 0 || cfg.ZLen <= 0 {
		return nil, fmt.Errorf("miniweather: domain lengths must be positive")
	}
	if cfg.CFL <= 0 || cfg.CFL > 1.5 {
		return nil, fmt.Errorf("miniweather: CFL %g out of (0, 1.5]", cfg.CFL)
	}
	in := &Instance{Cfg: cfg, dev: device.New("miniweather")}
	in.dx = cfg.XLen / float64(cfg.NX)
	in.dz = cfg.ZLen / float64(cfg.NZ)
	maxSpeed := 450.0 // max gravity/acoustic wave speed, per the reference
	in.dt = math.Min(in.dx, in.dz) / maxSpeed * cfg.CFL

	nCells := NumVars * (cfg.NZ + 2*hs) * (cfg.NX + 2*hs)
	in.State = make([]float64, nCells)
	in.tmp = make([]float64, nCells)
	in.tend = make([]float64, NumVars*cfg.NZ*cfg.NX)

	in.hyDensCell = make([]float64, cfg.NZ+2*hs)
	in.hyDensThetaCell = make([]float64, cfg.NZ+2*hs)
	in.hyDensInt = make([]float64, cfg.NZ+1)
	in.hyDensThetaInt = make([]float64, cfg.NZ+1)
	in.hyPressureInt = make([]float64, cfg.NZ+1)

	for k := 0; k < cfg.NZ+2*hs; k++ {
		z := (float64(k-hs) + 0.5) * in.dz
		r, t := hydroConstTheta(z)
		in.hyDensCell[k] = r
		in.hyDensThetaCell[k] = r * t
	}
	for k := 0; k <= cfg.NZ; k++ {
		z := float64(k) * in.dz
		r, t := hydroConstTheta(z)
		in.hyDensInt[k] = r
		in.hyDensThetaInt[k] = r * t
		in.hyPressureInt[k] = c0 * math.Pow(r*t, gamma)
	}
	in.InitThermalBubble()
	return in, nil
}

// hydroConstTheta returns the hydrostatic (density, potential temperature)
// at height z for a constant-theta background.
func hydroConstTheta(z float64) (r, t float64) {
	t = theta0
	exner := 1 - grav*z/(cp*theta0)
	p := p0 * math.Pow(exner, cp/rd)
	rt := math.Pow(p/c0, 1/gamma)
	return rt / t, t
}

// InitThermalBubble resets the state to a warm cosine-squared bubble
// (amplitude 3 K) centered in x at 1/4 of the domain height.
func (in *Instance) InitThermalBubble() {
	cfg := in.Cfg
	for i := range in.State {
		in.State[i] = 0
	}
	for k := 0; k < cfg.NZ; k++ {
		for i := 0; i < cfg.NX; i++ {
			x := (float64(i) + 0.5) * in.dx
			z := (float64(k) + 0.5) * in.dz
			dtheta := sampleEllipse(x, z, 3.0, cfg.XLen/2, 2000.0, 2000.0, 2000.0)
			if dtheta != 0 {
				r := in.hyDensCell[k+hs]
				in.State[in.idx(IDRhoT, k+hs, i+hs)] = r * dtheta
			}
		}
	}
}

// posRT floors rho*theta at a tiny positive value so that a wildly wrong
// surrogate state (Observation 4: auto-regressive surrogates can go
// unstable) degrades to huge-but-finite pressures instead of NaNs from a
// negative base under the fractional exponent.
func posRT(rt float64) float64 {
	if rt < 1e-6 {
		return 1e-6
	}
	return rt
}

// sampleEllipse returns amp*cos^2(pi/2 * dist) inside the ellipse of
// radii (xrad, zrad) centered at (x0, z0), and 0 outside.
func sampleEllipse(x, z, amp, x0, z0, xrad, zrad float64) float64 {
	dx := (x - x0) / xrad
	dz := (z - z0) / zrad
	dist := math.Sqrt(dx*dx + dz*dz)
	if dist >= 1 {
		return 0
	}
	c := math.Cos(math.Pi / 2 * dist)
	return amp * c * c
}

func (in *Instance) idx(v, k, i int) int {
	return (v*(in.Cfg.NZ+2*hs)+k)*(in.Cfg.NX+2*hs) + i
}

func (in *Instance) tendIdx(v, k, i int) int {
	return (v*in.Cfg.NZ+k)*in.Cfg.NX + i
}

// DT returns the stable timestep length in seconds.
func (in *Instance) DT() float64 { return in.dt }

// Device exposes the kernel-timing device.
func (in *Instance) Device() *device.Device { return in.dev }

// Step advances the state by one full timestep using Strang-like
// dimensional splitting with the reference three-substep integrator.
func (in *Instance) Step() {
	if in.directionSwitch {
		in.discreteStepDir(true)
		in.discreteStepDir(false)
	} else {
		in.discreteStepDir(false)
		in.discreteStepDir(true)
	}
	in.directionSwitch = !in.directionSwitch
}

// discreteStepDir performs the three-substep update in one direction.
func (in *Instance) discreteStepDir(xdir bool) {
	in.semiStep(in.State, in.State, in.tmp, in.dt/3, xdir)
	in.semiStep(in.State, in.tmp, in.tmp, in.dt/2, xdir)
	in.semiStep(in.State, in.tmp, in.State, in.dt, xdir)
}

// semiStep computes out = init + dt * tend(cur) for one direction.
func (in *Instance) semiStep(init, cur, out []float64, dt float64, xdir bool) {
	if xdir {
		in.setHalosX(cur)
		in.tendenciesX(cur, dt)
	} else {
		in.setHalosZ(cur)
		in.tendenciesZ(cur, dt)
	}
	cfg := in.Cfg
	in.dev.Launch1D("apply_tendencies", NumVars*cfg.NZ, func(vk int) {
		v, k := vk/cfg.NZ, vk%cfg.NZ
		for i := 0; i < cfg.NX; i++ {
			id := in.idx(v, k+hs, i+hs)
			out[id] = init[id] + dt*in.tend[in.tendIdx(v, k, i)]
		}
	})
}

// setHalosX applies periodic boundaries in x.
func (in *Instance) setHalosX(s []float64) {
	cfg := in.Cfg
	in.dev.Launch1D("halo_x", NumVars*(cfg.NZ+2*hs), func(vk int) {
		v, k := vk/(cfg.NZ+2*hs), vk%(cfg.NZ+2*hs)
		for h := 0; h < hs; h++ {
			s[in.idx(v, k, h)] = s[in.idx(v, k, cfg.NX+h)]
			s[in.idx(v, k, cfg.NX+hs+h)] = s[in.idx(v, k, hs+h)]
		}
	})
}

// setHalosZ applies solid-wall boundaries in z: constant extrapolation
// with zero vertical momentum and density-scaled horizontal momentum.
func (in *Instance) setHalosZ(s []float64) {
	cfg := in.Cfg
	in.dev.Launch1D("halo_z", NumVars*(cfg.NX+2*hs), func(vi int) {
		v, i := vi/(cfg.NX+2*hs), vi%(cfg.NX+2*hs)
		for h := 0; h < hs; h++ {
			bot, top := hs, cfg.NZ+hs-1
			switch v {
			case IDWMom:
				s[in.idx(v, h, i)] = 0
				s[in.idx(v, cfg.NZ+hs+h, i)] = 0
			case IDUMom:
				s[in.idx(v, h, i)] = s[in.idx(v, bot, i)] / in.hyDensCell[bot] * in.hyDensCell[h]
				s[in.idx(v, cfg.NZ+hs+h, i)] = s[in.idx(v, top, i)] / in.hyDensCell[top] * in.hyDensCell[cfg.NZ+hs+h]
			default:
				s[in.idx(v, h, i)] = s[in.idx(v, bot, i)]
				s[in.idx(v, cfg.NZ+hs+h, i)] = s[in.idx(v, top, i)]
			}
		}
	})
}

// tendenciesX computes x-direction flux-divergence tendencies.
func (in *Instance) tendenciesX(s []float64, dt float64) {
	cfg := in.Cfg
	hvCoef := -0.25 * in.dx / (16 * dt) // hyperviscosity (hv_beta = 0.25)
	nxi := cfg.NX + 1
	flux := make([]float64, NumVars*cfg.NZ*nxi)
	in.dev.Launch1D("tend_x_flux", cfg.NZ, func(k int) {
		var vals, d3 [NumVars]float64
		for i := 0; i <= cfg.NX; i++ {
			for v := 0; v < NumVars; v++ {
				s0 := s[in.idx(v, k+hs, i)]
				s1 := s[in.idx(v, k+hs, i+1)]
				s2 := s[in.idx(v, k+hs, i+2)]
				s3 := s[in.idx(v, k+hs, i+3)]
				vals[v] = -s0/12 + 7*s1/12 + 7*s2/12 - s3/12
				d3[v] = -s0 + 3*s1 - 3*s2 + s3
			}
			r := vals[IDDens] + in.hyDensCell[k+hs]
			u := vals[IDUMom] / r
			w := vals[IDWMom] / r
			t := (vals[IDRhoT] + in.hyDensThetaCell[k+hs]) / r
			p := c0 * math.Pow(posRT(r*t), gamma)

			base := (k*nxi + i) * NumVars
			flux[base+IDDens] = r*u - hvCoef*d3[IDDens]
			flux[base+IDUMom] = r*u*u + p - hvCoef*d3[IDUMom]
			flux[base+IDWMom] = r*u*w - hvCoef*d3[IDWMom]
			flux[base+IDRhoT] = r*u*t - hvCoef*d3[IDRhoT]
		}
	})
	in.dev.Launch1D("tend_x_div", cfg.NZ, func(k int) {
		for i := 0; i < cfg.NX; i++ {
			for v := 0; v < NumVars; v++ {
				l := (k*nxi + i) * NumVars
				rgt := (k*nxi + i + 1) * NumVars
				in.tend[in.tendIdx(v, k, i)] = -(flux[rgt+v] - flux[l+v]) / in.dx
			}
		}
	})
}

// tendenciesZ computes z-direction tendencies including the gravity
// source term.
func (in *Instance) tendenciesZ(s []float64, dt float64) {
	cfg := in.Cfg
	hvCoef := -0.25 * in.dz / (16 * dt)
	nzi := cfg.NZ + 1
	flux := make([]float64, NumVars*nzi*cfg.NX)
	in.dev.Launch1D("tend_z_flux", nzi, func(k int) {
		var vals, d3 [NumVars]float64
		for i := 0; i < cfg.NX; i++ {
			for v := 0; v < NumVars; v++ {
				s0 := s[in.idx(v, k, i+hs)]
				s1 := s[in.idx(v, k+1, i+hs)]
				s2 := s[in.idx(v, k+2, i+hs)]
				s3 := s[in.idx(v, k+3, i+hs)]
				vals[v] = -s0/12 + 7*s1/12 + 7*s2/12 - s3/12
				d3[v] = -s0 + 3*s1 - 3*s2 + s3
			}
			r := vals[IDDens] + in.hyDensInt[k]
			u := vals[IDUMom] / r
			w := vals[IDWMom] / r
			t := (vals[IDRhoT] + in.hyDensThetaInt[k]) / r
			p := c0*math.Pow(posRT(r*t), gamma) - in.hyPressureInt[k]
			// Enforce zero mass/heat flux through the solid walls.
			if k == 0 || k == cfg.NZ {
				w = 0
				d3[IDDens] = 0
				d3[IDRhoT] = 0
			}
			base := (k*cfg.NX + i) * NumVars
			flux[base+IDDens] = r*w - hvCoef*d3[IDDens]
			flux[base+IDUMom] = r*w*u - hvCoef*d3[IDUMom]
			flux[base+IDWMom] = r*w*w + p - hvCoef*d3[IDWMom]
			flux[base+IDRhoT] = r*w*t - hvCoef*d3[IDRhoT]
		}
	})
	in.dev.Launch1D("tend_z_div", cfg.NZ, func(k int) {
		for i := 0; i < cfg.NX; i++ {
			for v := 0; v < NumVars; v++ {
				lo := (k*cfg.NX + i) * NumVars
				hi := ((k+1)*cfg.NX + i) * NumVars
				td := -(flux[hi+v] - flux[lo+v]) / in.dz
				if v == IDWMom {
					td -= s[in.idx(IDDens, k+hs, i+hs)] * grav
				}
				in.tend[in.tendIdx(v, k, i)] = td
			}
		}
	})
}

// Interior copies the halo-free state [NumVars][NZ][NX] into dst (or
// allocates it when nil) and returns it: the QoI vector.
func (in *Instance) Interior(dst []float64) []float64 {
	cfg := in.Cfg
	n := NumVars * cfg.NZ * cfg.NX
	if dst == nil {
		dst = make([]float64, n)
	}
	at := 0
	for v := 0; v < NumVars; v++ {
		for k := 0; k < cfg.NZ; k++ {
			for i := 0; i < cfg.NX; i++ {
				dst[at] = in.State[in.idx(v, k+hs, i+hs)]
				at++
			}
		}
	}
	return dst
}

// SetInterior overwrites the halo-free state from src (same layout as
// Interior).
func (in *Instance) SetInterior(src []float64) {
	cfg := in.Cfg
	at := 0
	for v := 0; v < NumVars; v++ {
		for k := 0; k < cfg.NZ; k++ {
			for i := 0; i < cfg.NX; i++ {
				in.State[in.idx(v, k+hs, i+hs)] = src[at]
				at++
			}
		}
	}
}

// TotalMass returns the integral of full density over the domain — the
// conserved quantity the test suite tracks.
func (in *Instance) TotalMass() float64 {
	cfg := in.Cfg
	var mass float64
	for k := 0; k < cfg.NZ; k++ {
		for i := 0; i < cfg.NX; i++ {
			r := in.State[in.idx(IDDens, k+hs, i+hs)] + in.hyDensCell[k+hs]
			mass += r * in.dx * in.dz
		}
	}
	return mass
}

// StateDims returns the shape of the full state array including halos:
// [NumVars, NZ+2hs, NX+2hs], for binding to HPAC-ML.
func (in *Instance) StateDims() (nv, nzh, nxh int) {
	return NumVars, in.Cfg.NZ + 2*hs, in.Cfg.NX + 2*hs
}

// Directives returns the 3-directive HPAC-ML annotation Table II reports
// for MiniWeather: one functor, one map over the interior of the haloed
// state array, and the ml clause with an inout array (the iterative
// solver updates its state in place).
func Directives(model, db string) string {
	return fmt.Sprintf(`
#pragma approx tensor functor(cell: [c, k, i, 0:1] = ([c, k, i]))
#pragma approx tensor map(to: cell(state[0:NV, 2:NZH-2, 2:NXH-2]))
#pragma approx ml(predicated:useModel) inout(state) model(%q) db(%q) if(gate)
`, model, db)
}
