package miniweather

import (
	"embed"

	"repro/internal/benchmarks/common"
)

//go:embed *.go
var sources embed.FS

// SourceLoC counts this package's non-comment lines of code — the Total
// LoC column of Table II.
func SourceLoC() int {
	return common.EmbeddedLoC(sources)
}
