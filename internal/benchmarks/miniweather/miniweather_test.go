package miniweather

import (
	"math"
	"testing"
)

func smallConfig() Config {
	return Config{NX: 32, NZ: 16, XLen: 2.0e4, ZLen: 1.0e4, CFL: 0.9}
}

func TestNewValidation(t *testing.T) {
	bad := []Config{
		{NX: 4, NZ: 16, XLen: 1, ZLen: 1, CFL: 0.5},
		{NX: 16, NZ: 4, XLen: 1, ZLen: 1, CFL: 0.5},
		{NX: 16, NZ: 16, XLen: 0, ZLen: 1, CFL: 0.5},
		{NX: 16, NZ: 16, XLen: 1, ZLen: 1, CFL: 0},
		{NX: 16, NZ: 16, XLen: 1, ZLen: 1, CFL: 99},
	}
	for _, c := range bad {
		if _, err := New(c); err == nil {
			t.Errorf("config %+v: want error", c)
		}
	}
}

func TestHydrostaticBackgroundDecreasesWithHeight(t *testing.T) {
	r0, _ := hydroConstTheta(0)
	r5, _ := hydroConstTheta(5000)
	r10, _ := hydroConstTheta(10000)
	if !(r0 > r5 && r5 > r10) {
		t.Fatalf("density not decreasing with height: %g %g %g", r0, r5, r10)
	}
	if r0 < 1.0 || r0 > 1.4 {
		t.Fatalf("sea-level density implausible: %g", r0)
	}
}

func TestBubbleInitialCondition(t *testing.T) {
	in, err := New(smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	// Potential-temperature perturbation positive inside the bubble,
	// zero far away; all other fields zero.
	var maxRhoT float64
	for k := 0; k < in.Cfg.NZ; k++ {
		for i := 0; i < in.Cfg.NX; i++ {
			if v := in.State[in.idx(IDRhoT, k+hs, i+hs)]; v > maxRhoT {
				maxRhoT = v
			}
			if in.State[in.idx(IDUMom, k+hs, i+hs)] != 0 {
				t.Fatal("initial momentum must be zero")
			}
		}
	}
	if maxRhoT <= 0 {
		t.Fatal("bubble missing from initial condition")
	}
	if corner := in.State[in.idx(IDRhoT, hs, hs)]; corner != 0 {
		t.Fatalf("corner cell inside bubble: %g", corner)
	}
}

func TestStepStaysFiniteAndStable(t *testing.T) {
	in, _ := New(smallConfig())
	for s := 0; s < 50; s++ {
		in.Step()
	}
	for i, v := range in.State {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			t.Fatalf("state[%d] not finite after 50 steps: %g", i, v)
		}
	}
	// Perturbations stay bounded (stability of the scheme).
	interior := in.Interior(nil)
	for i, v := range interior {
		if math.Abs(v) > 100 {
			t.Fatalf("interior[%d] blew up: %g", i, v)
		}
	}
}

func TestMassConservation(t *testing.T) {
	in, _ := New(smallConfig())
	m0 := in.TotalMass()
	for s := 0; s < 50; s++ {
		in.Step()
	}
	m1 := in.TotalMass()
	if rel := math.Abs(m1-m0) / m0; rel > 1e-8 {
		t.Fatalf("mass drifted by %g (relative)", rel)
	}
}

func TestBubbleRises(t *testing.T) {
	in, _ := New(smallConfig())
	// Center of mass (height) of the theta perturbation must increase:
	// warm air rises.
	com := func() float64 {
		var num, den float64
		for k := 0; k < in.Cfg.NZ; k++ {
			for i := 0; i < in.Cfg.NX; i++ {
				v := in.State[in.idx(IDRhoT, k+hs, i+hs)]
				if v > 0 {
					num += v * (float64(k) + 0.5)
					den += v
				}
			}
		}
		if den == 0 {
			return 0
		}
		return num / den
	}
	z0 := com()
	for s := 0; s < 200; s++ {
		in.Step()
	}
	z1 := com()
	if z1 <= z0 {
		t.Fatalf("bubble did not rise: center %g -> %g", z0, z1)
	}
}

func TestXSymmetryPreserved(t *testing.T) {
	// The bubble is centered in x; the dynamics must preserve mirror
	// symmetry of the theta field about the domain center.
	in, _ := New(smallConfig())
	for s := 0; s < 20; s++ {
		in.Step()
	}
	nx := in.Cfg.NX
	for k := 0; k < in.Cfg.NZ; k++ {
		for i := 0; i < nx/2; i++ {
			l := in.State[in.idx(IDRhoT, k+hs, i+hs)]
			r := in.State[in.idx(IDRhoT, k+hs, nx-1-i+hs)]
			if math.Abs(l-r) > 1e-8*(1+math.Abs(l)) {
				t.Fatalf("x symmetry broken at k=%d i=%d: %g vs %g", k, i, l, r)
			}
		}
	}
}

func TestInteriorRoundTrip(t *testing.T) {
	in, _ := New(smallConfig())
	in.Step()
	snap := in.Interior(nil)
	// Clobber, restore, compare.
	zero := make([]float64, len(snap))
	in.SetInterior(zero)
	if in.Interior(nil)[10] != 0 {
		t.Fatal("SetInterior failed to clear")
	}
	in.SetInterior(snap)
	back := in.Interior(nil)
	for i := range snap {
		if back[i] != snap[i] {
			t.Fatalf("interior round trip mismatch at %d", i)
		}
	}
}

func TestStateDims(t *testing.T) {
	in, _ := New(smallConfig())
	nv, nzh, nxh := in.StateDims()
	if nv != NumVars || nzh != in.Cfg.NZ+2*hs || nxh != in.Cfg.NX+2*hs {
		t.Fatalf("dims = %d %d %d", nv, nzh, nxh)
	}
	if len(in.State) != nv*nzh*nxh {
		t.Fatal("state length mismatch")
	}
}

func TestDeterministicEvolution(t *testing.T) {
	a, _ := New(smallConfig())
	b, _ := New(smallConfig())
	for s := 0; s < 10; s++ {
		a.Step()
		b.Step()
	}
	ai, bi := a.Interior(nil), b.Interior(nil)
	for i := range ai {
		if ai[i] != bi[i] {
			t.Fatal("evolution not deterministic")
		}
	}
}

func TestDirectiveCount(t *testing.T) {
	src := Directives("m", "d")
	count := 0
	for i := 0; i+1 < len(src); i++ {
		if src[i] == '\n' && src[i+1] == '#' {
			count++
		}
	}
	if count != 3 {
		t.Fatalf("directive count = %d, want 3 (Table II)", count)
	}
}

func TestKernelsTimed(t *testing.T) {
	in, _ := New(smallConfig())
	in.Step()
	for _, k := range []string{"tend_x_flux", "tend_z_flux", "apply_tendencies", "halo_x", "halo_z"} {
		if in.Device().KernelTime(k) <= 0 {
			t.Fatalf("kernel %s not timed", k)
		}
	}
}
