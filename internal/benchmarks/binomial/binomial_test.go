package binomial

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewValidation(t *testing.T) {
	if _, err := New(Config{NumOptions: 0, Steps: 16, Volatility: 0.3}); err == nil {
		t.Fatal("want error for zero options")
	}
	if _, err := New(Config{NumOptions: 4, Steps: 0, Volatility: 0.3}); err == nil {
		t.Fatal("want error for zero steps")
	}
	if _, err := New(Config{NumOptions: 4, Steps: 16, Volatility: 0}); err == nil {
		t.Fatal("want error for zero volatility")
	}
}

func TestConvergesToBlackScholes(t *testing.T) {
	// For a non-dividend-paying stock, the American call equals the
	// European call; a deep lattice must converge to Black-Scholes.
	s, x, tt, r, v := 20.0, 18.0, 2.0, 0.02, 0.30
	want := EuropeanBlackScholesCall(s, x, tt, r, v)
	got := PriceAmericanCall(s, x, tt, r, v, 2048, nil)
	if math.Abs(got-want) > 0.01*want {
		t.Fatalf("lattice %g vs Black-Scholes %g", got, want)
	}
}

func TestConvergenceImprovesWithSteps(t *testing.T) {
	s, x, tt, r, v := 25.0, 30.0, 5.0, 0.02, 0.30
	want := EuropeanBlackScholesCall(s, x, tt, r, v)
	err64 := math.Abs(PriceAmericanCall(s, x, tt, r, v, 64, nil) - want)
	err1024 := math.Abs(PriceAmericanCall(s, x, tt, r, v, 1024, nil) - want)
	if err1024 > err64 {
		t.Fatalf("error grew with lattice depth: %g -> %g", err64, err1024)
	}
}

func TestPriceMonotonicInSpot(t *testing.T) {
	prev := -1.0
	for s := 5.0; s <= 30; s += 2.5 {
		p := PriceAmericanCall(s, 20, 3, 0.02, 0.3, 128, nil)
		if p < prev {
			t.Fatalf("call price decreased in spot: %g -> %g at S=%g", prev, p, s)
		}
		prev = p
	}
}

func TestPriceBounds(t *testing.T) {
	// 0 <= C <= S, and C >= S - X (early exercise bound).
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 50; i++ {
		s := 5 + 25*rng.Float64()
		x := 1 + 99*rng.Float64()
		tt := 0.25 + 9.75*rng.Float64()
		p := PriceAmericanCall(s, x, tt, 0.02, 0.3, 64, nil)
		if p < 0 || p > s+1e-9 {
			t.Fatalf("price %g out of [0, S=%g]", p, s)
		}
		if intrinsic := s - x; p < intrinsic-1e-9 {
			t.Fatalf("price %g below intrinsic %g", p, intrinsic)
		}
	}
}

func TestComputePricesPortfolio(t *testing.T) {
	cfg := Config{NumOptions: 256, Steps: 64, RiskFree: 0.02, Volatility: 0.3, Seed: 7}
	in, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	in.ComputePrices()
	for i, p := range in.Prices {
		if math.IsNaN(p) || p < 0 {
			t.Fatalf("price %d invalid: %g", i, p)
		}
		want := PriceAmericanCall(in.S[i], in.X[i], in.T[i], cfg.RiskFree, cfg.Volatility, cfg.Steps, nil)
		if p != want {
			t.Fatalf("kernel price %g != direct price %g at %d", p, want, i)
		}
	}
	if in.Device().KernelTime("binomialOptionsKernel") <= 0 {
		t.Fatal("kernel not timed")
	}
}

func TestDeterministicPortfolio(t *testing.T) {
	cfg := Config{NumOptions: 64, Steps: 32, RiskFree: 0.02, Volatility: 0.3, Seed: 9}
	a, _ := New(cfg)
	b, _ := New(cfg)
	a.ComputePrices()
	b.ComputePrices()
	for i := range a.Prices {
		if a.Prices[i] != b.Prices[i] {
			t.Fatal("portfolio not deterministic")
		}
	}
}

func TestScratchReuseMatchesFresh(t *testing.T) {
	scratch := make([]float64, 65)
	a := PriceAmericanCall(20, 18, 1, 0.02, 0.3, 64, scratch)
	b := PriceAmericanCall(20, 18, 1, 0.02, 0.3, 64, nil)
	if a != b {
		t.Fatalf("scratch reuse changed result: %g vs %g", a, b)
	}
	// Dirty scratch must not leak into a second pricing.
	c := PriceAmericanCall(10, 50, 5, 0.02, 0.3, 64, scratch)
	d := PriceAmericanCall(10, 50, 5, 0.02, 0.3, 64, nil)
	if c != d {
		t.Fatalf("dirty scratch leaked: %g vs %g", c, d)
	}
}

func TestDirectiveCount(t *testing.T) {
	src := Directives("m", "d")
	count := 0
	for i := 0; i+1 < len(src); i++ {
		if src[i] == '\n' && src[i+1] == '#' {
			count++
		}
	}
	if count != 4 {
		t.Fatalf("directive count = %d, want 4 (Table II)", count)
	}
}

// Property: longer expiry never cheapens an American call (more optionality).
func TestPropPriceMonotonicInExpiry(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		s := 5 + 25*rng.Float64()
		x := 1 + 99*rng.Float64()
		t1 := 0.25 + 4*rng.Float64()
		t2 := t1 + 0.5 + 4*rng.Float64()
		p1 := PriceAmericanCall(s, x, t1, 0.02, 0.3, 96, nil)
		p2 := PriceAmericanCall(s, x, t2, 0.02, 0.3, 96, nil)
		return p2 >= p1-1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// Property: the price is homogeneous of degree one: C(kS, kX) = k C(S, X).
func TestPropHomogeneity(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		s := 5 + 25*rng.Float64()
		x := 1 + 99*rng.Float64()
		tt := 0.25 + 9*rng.Float64()
		k := 0.5 + 2*rng.Float64()
		p1 := PriceAmericanCall(s, x, tt, 0.02, 0.3, 96, nil)
		p2 := PriceAmericanCall(k*s, k*x, tt, 0.02, 0.3, 96, nil)
		return math.Abs(p2-k*p1) < 1e-6*(1+k*p1)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
