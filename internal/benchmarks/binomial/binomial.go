// Package binomial is a Go port of the CUDA-SDK BinomialOptions
// benchmark (Podlozhnyuk): pricing a portfolio of American-style stock
// options by backward induction on a recombining binomial lattice. Each
// option costs O(steps^2) work, which the surrogate replaces with one MLP
// evaluation over the option's three varying parameters.
//
// QoI: the computed option prices. Metric: RMSE (Table I).
package binomial

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/device"
)

// Config sizes the portfolio and the lattice.
type Config struct {
	NumOptions int
	Steps      int
	RiskFree   float64
	Volatility float64
	Seed       int64
}

// DefaultConfig mirrors the CUDA sample's parameters (risk-free rate 2%,
// volatility 30%) at a lattice depth that keeps the accurate path clearly
// compute-bound.
func DefaultConfig() Config {
	return Config{NumOptions: 8192, Steps: 256, RiskFree: 0.02, Volatility: 0.30, Seed: 11}
}

// Instance is one generated portfolio plus its price buffer.
type Instance struct {
	Cfg Config

	// S, X, T are the per-option varying parameters: spot price, strike
	// price, and years to expiry — the region's input arrays.
	S []float64
	X []float64
	T []float64
	// Prices is the computed QoI: the region's output array.
	Prices []float64

	dev *device.Device
}

// New generates a deterministic portfolio: spot in [5, 30), strike in
// [1, 100), expiry in [0.25, 10) years, matching the CUDA sample's
// randomData ranges.
func New(cfg Config) (*Instance, error) {
	if cfg.NumOptions <= 0 || cfg.Steps <= 0 {
		return nil, fmt.Errorf("binomial: sizes must be positive: %+v", cfg)
	}
	if cfg.Volatility <= 0 {
		return nil, fmt.Errorf("binomial: volatility must be positive")
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	in := &Instance{
		Cfg:    cfg,
		S:      make([]float64, cfg.NumOptions),
		X:      make([]float64, cfg.NumOptions),
		T:      make([]float64, cfg.NumOptions),
		Prices: make([]float64, cfg.NumOptions),
		dev:    device.New("binomial"),
	}
	in.RandomizeOptions(cfg.Seed + 1)
	_ = rng
	return in, nil
}

// RandomizeOptions refreshes the option parameters with new uniform draws.
func (in *Instance) RandomizeOptions(seed int64) {
	rng := rand.New(rand.NewSource(seed))
	for i := 0; i < in.Cfg.NumOptions; i++ {
		in.S[i] = 5 + 25*rng.Float64()
		in.X[i] = 1 + 99*rng.Float64()
		in.T[i] = 0.25 + 9.75*rng.Float64()
	}
}

// Device exposes the kernel-timing device.
func (in *Instance) Device() *device.Device { return in.dev }

// ComputePrices is the accurate execution path: one lattice per option.
func (in *Instance) ComputePrices() {
	steps := in.Cfg.Steps
	in.dev.LaunchBlocks("binomialOptionsKernel", in.Cfg.NumOptions, func(lo, hi int) {
		// Per-block scratch reused across the options of this block,
		// mirroring the CUDA kernel's shared-memory call value array.
		scratch := make([]float64, steps+1)
		for i := lo; i < hi; i++ {
			in.Prices[i] = PriceAmericanCall(in.S[i], in.X[i], in.T[i],
				in.Cfg.RiskFree, in.Cfg.Volatility, steps, scratch)
		}
	})
}

// PriceAmericanCall prices an American call by CRR backward induction.
// scratch must have at least steps+1 entries (pass nil to allocate).
func PriceAmericanCall(s, x, t, r, v float64, steps int, scratch []float64) float64 {
	if scratch == nil {
		scratch = make([]float64, steps+1)
	}
	dt := t / float64(steps)
	vDt := v * math.Sqrt(dt)
	u := math.Exp(vDt)
	d := 1 / u
	rInv := math.Exp(-r * dt)
	pu := (math.Exp(r*dt) - d) / (u - d)
	pd := 1 - pu

	// Terminal payoffs.
	for j := 0; j <= steps; j++ {
		price := s * math.Exp(vDt*float64(2*j-steps))
		payoff := price - x
		if payoff < 0 {
			payoff = 0
		}
		scratch[j] = payoff
	}
	// Backward induction with the early-exercise test.
	for step := steps - 1; step >= 0; step-- {
		for j := 0; j <= step; j++ {
			cont := rInv * (pu*scratch[j+1] + pd*scratch[j])
			price := s * math.Exp(vDt*float64(2*j-step))
			exercise := price - x
			if exercise > cont {
				cont = exercise
			}
			scratch[j] = cont
		}
	}
	return scratch[0]
}

// EuropeanBlackScholesCall is the closed-form European call price, used
// by the test suite as a convergence oracle (an American call on a
// non-dividend stock equals the European one).
func EuropeanBlackScholesCall(s, x, t, r, v float64) float64 {
	sqrtT := math.Sqrt(t)
	d1 := (math.Log(s/x) + (r+v*v/2)*t) / (v * sqrtT)
	d2 := d1 - v*sqrtT
	return s*cnd(d1) - x*math.Exp(-r*t)*cnd(d2)
}

func cnd(z float64) float64 { return 0.5 * math.Erfc(-z/math.Sqrt2) }

// Directives returns the 4-directive HPAC-ML annotation for the pricing
// region (Table II): the three varying parameters gather into one
// 3-feature tensor; the price scatters back through an inline functor
// application.
func Directives(model, db string) string {
	return fmt.Sprintf(`
#pragma approx tensor functor(opt_in: [i, 0:3] = ([i]))
#pragma approx tensor functor(price_out: [i, 0:1] = ([i]))
#pragma approx tensor map(to: opt_in(S[0:NOPT], X[0:NOPT], T[0:NOPT]))
#pragma approx ml(predicated:useModel) in(S, X, T) out(price_out(prices[0:NOPT])) model(%q) db(%q)
`, model, db)
}
