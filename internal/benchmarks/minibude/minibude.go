// Package minibude is a Go port of the miniBUDE virtual-screening
// mini-app (Poenaru et al.): it evaluates an empirical forcefield over
// ligand poses to predict ligand–protein binding energy. The kernel is
// compute-bound — every pose touches every ligand×protein atom pair —
// which is exactly why the paper's Observation 2 replaces it with a dense
// surrogate that uses the hardware far more efficiently.
//
// QoI: the binding energy of each pose. Metric: MAPE (Table I).
package minibude

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/device"
)

// Atom is one forcefield particle: position plus a type index selecting
// its interaction parameters.
type Atom struct {
	X, Y, Z float64
	Type    int
}

// Config sizes the deck.
type Config struct {
	NumPoses     int
	LigandAtoms  int
	ProteinAtoms int
	AtomTypes    int
	Seed         int64
}

// DefaultConfig mirrors a small bm1-like deck that runs in milliseconds
// on a CPU device while keeping the kernel strongly compute-bound.
func DefaultConfig() Config {
	return Config{NumPoses: 4096, LigandAtoms: 24, ProteinAtoms: 192, AtomTypes: 4, Seed: 7}
}

// Instance is one generated deck plus its pose and energy buffers — the
// application state the HPAC-ML region maps.
type Instance struct {
	Cfg     Config
	Protein []Atom
	Ligand  []Atom

	// Poses holds NumPoses rows of 6 descriptors (3 Euler angles, 3
	// translations): the region's input array.
	Poses []float64
	// Energies holds the computed binding energy per pose: the region's
	// output array and the QoI.
	Energies []float64

	// Pairwise forcefield parameters indexed [typeA*AtomTypes+typeB].
	epsilon []float64
	sigma   []float64
	charge  []float64

	dev *device.Device
}

// New generates a deterministic deck from the config.
func New(cfg Config) (*Instance, error) {
	if cfg.NumPoses <= 0 || cfg.LigandAtoms <= 0 || cfg.ProteinAtoms <= 0 || cfg.AtomTypes <= 0 {
		return nil, fmt.Errorf("minibude: all config sizes must be positive: %+v", cfg)
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	in := &Instance{
		Cfg:      cfg,
		Protein:  make([]Atom, cfg.ProteinAtoms),
		Ligand:   make([]Atom, cfg.LigandAtoms),
		Poses:    make([]float64, cfg.NumPoses*6),
		Energies: make([]float64, cfg.NumPoses),
		epsilon:  make([]float64, cfg.AtomTypes*cfg.AtomTypes),
		sigma:    make([]float64, cfg.AtomTypes*cfg.AtomTypes),
		charge:   make([]float64, cfg.AtomTypes*cfg.AtomTypes),
		dev:      device.New("minibude"),
	}
	// Protein: a loose globular cluster.
	for i := range in.Protein {
		in.Protein[i] = Atom{
			X:    rng.NormFloat64() * 4,
			Y:    rng.NormFloat64() * 4,
			Z:    rng.NormFloat64() * 4,
			Type: rng.Intn(cfg.AtomTypes),
		}
	}
	// Ligand: a compact cluster near the origin.
	for i := range in.Ligand {
		in.Ligand[i] = Atom{
			X:    rng.NormFloat64(),
			Y:    rng.NormFloat64(),
			Z:    rng.NormFloat64(),
			Type: rng.Intn(cfg.AtomTypes),
		}
	}
	// Smooth, bounded pairwise parameters.
	for a := 0; a < cfg.AtomTypes; a++ {
		for b := 0; b < cfg.AtomTypes; b++ {
			idx := a*cfg.AtomTypes + b
			in.epsilon[idx] = 0.2 + 0.8*rng.Float64()
			in.sigma[idx] = 1.5 + rng.Float64()
			in.charge[idx] = (rng.Float64()*2 - 1) * 0.5
		}
	}
	in.RandomizePoses(cfg.Seed + 1)
	return in, nil
}

// RandomizePoses fills the pose array with fresh uniform draws: angles in
// [-0.5, 0.5] rad, translations in [-1.5, 1.5].
func (in *Instance) RandomizePoses(seed int64) {
	rng := rand.New(rand.NewSource(seed))
	for p := 0; p < in.Cfg.NumPoses; p++ {
		for d := 0; d < 3; d++ {
			in.Poses[p*6+d] = rng.Float64() - 0.5
		}
		for d := 3; d < 6; d++ {
			in.Poses[p*6+d] = (rng.Float64() - 0.5) * 3
		}
	}
}

// Device exposes the kernel-timing device.
func (in *Instance) Device() *device.Device { return in.dev }

// ComputeEnergies is the accurate execution path: the fasten-style kernel
// that scores every pose against the full protein.
func (in *Instance) ComputeEnergies() {
	lig, prot := in.Ligand, in.Protein
	nt := in.Cfg.AtomTypes
	in.dev.Launch1D("fasten_main", in.Cfg.NumPoses, func(p int) {
		in.Energies[p] = in.scorePose(in.Poses[p*6:p*6+6], lig, prot, nt)
	})
}

// scorePose transforms the ligand by the pose and accumulates the
// empirical forcefield energy over all atom pairs.
func (in *Instance) scorePose(pose []float64, lig, prot []Atom, nt int) float64 {
	sa, ca := math.Sincos(pose[0])
	sb, cb := math.Sincos(pose[1])
	sg, cg := math.Sincos(pose[2])
	tx, ty, tz := pose[3], pose[4], pose[5]

	// Rotation matrix Rz(g) Ry(b) Rx(a).
	r00 := cg * cb
	r01 := cg*sb*sa - sg*ca
	r02 := cg*sb*ca + sg*sa
	r10 := sg * cb
	r11 := sg*sb*sa + cg*ca
	r12 := sg*sb*ca - cg*sa
	r20 := -sb
	r21 := cb * sa
	r22 := cb * ca

	var energy float64
	for li := range lig {
		l := &lig[li]
		lx := r00*l.X + r01*l.Y + r02*l.Z + tx
		ly := r10*l.X + r11*l.Y + r12*l.Z + ty
		lz := r20*l.X + r21*l.Y + r22*l.Z + tz
		for pi := range prot {
			pr := &prot[pi]
			dx := lx - pr.X
			dy := ly - pr.Y
			dz := lz - pr.Z
			r2 := dx*dx + dy*dy + dz*dz
			if r2 < 2.25 { // soft-core floor at 1.5 to bound the LJ wall
				r2 = 2.25
			}
			idx := l.Type*nt + pr.Type
			s2 := in.sigma[idx] * in.sigma[idx] / r2
			s6 := s2 * s2 * s2
			// Lennard-Jones steric term plus a screened electrostatic
			// term — the smooth empirical-forcefield family BUDE uses.
			energy += 4*in.epsilon[idx]*(s6*s6-s6) + in.charge[idx]/math.Sqrt(r2)
		}
	}
	return energy
}

// PosesMatrix returns the pose array viewed as [NumPoses][6] for the
// HPAC-ML array binding.
func (in *Instance) PosesMatrix() ([]float64, int, int) {
	return in.Poses, in.Cfg.NumPoses, 6
}

// Directives returns the HPAC-ML annotation for the pose-scoring region —
// exactly the 4 directives Table II reports for MiniBUDE: two functor
// declarations, one input tensor map, and the ml clause (whose out()
// carries an inline functor application).
func Directives(model, db string) string {
	return fmt.Sprintf(`
#pragma approx tensor functor(pose_in: [i, 0:6] = ([i, 0:6]))
#pragma approx tensor functor(energy_out: [i, 0:1] = ([i]))
#pragma approx tensor map(to: pose_in(poses[0:NPOSES, 0:6]))
#pragma approx ml(predicated:useModel) in(poses) out(energy_out(energies[0:NPOSES])) model(%q) db(%q)
`, model, db)
}
