package minibude

import (
	"math"
	"testing"
	"testing/quick"
)

func smallConfig() Config {
	return Config{NumPoses: 128, LigandAtoms: 8, ProteinAtoms: 32, AtomTypes: 3, Seed: 5}
}

func TestNewValidation(t *testing.T) {
	bad := []Config{
		{NumPoses: 0, LigandAtoms: 1, ProteinAtoms: 1, AtomTypes: 1},
		{NumPoses: 1, LigandAtoms: 0, ProteinAtoms: 1, AtomTypes: 1},
		{NumPoses: 1, LigandAtoms: 1, ProteinAtoms: 0, AtomTypes: 1},
		{NumPoses: 1, LigandAtoms: 1, ProteinAtoms: 1, AtomTypes: 0},
	}
	for _, c := range bad {
		if _, err := New(c); err == nil {
			t.Errorf("config %+v: want error", c)
		}
	}
}

func TestDeterministicGeneration(t *testing.T) {
	a, err := New(smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	b, err := New(smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	a.ComputeEnergies()
	b.ComputeEnergies()
	for i := range a.Energies {
		if a.Energies[i] != b.Energies[i] {
			t.Fatalf("energies differ at %d: %g vs %g", i, a.Energies[i], b.Energies[i])
		}
	}
}

func TestEnergiesAreFiniteAndVaried(t *testing.T) {
	in, _ := New(smallConfig())
	in.ComputeEnergies()
	seen := map[float64]bool{}
	for i, e := range in.Energies {
		if math.IsNaN(e) || math.IsInf(e, 0) {
			t.Fatalf("energy %d not finite: %g", i, e)
		}
		seen[e] = true
	}
	if len(seen) < len(in.Energies)/2 {
		t.Fatalf("energies suspiciously degenerate: %d unique of %d", len(seen), len(in.Energies))
	}
}

func TestIdentityPoseMatchesDirectScore(t *testing.T) {
	in, _ := New(smallConfig())
	// Zero pose: rotation = I, translation = 0.
	for d := 0; d < 6; d++ {
		in.Poses[d] = 0
	}
	in.ComputeEnergies()
	// Direct evaluation without any transform.
	var want float64
	nt := in.Cfg.AtomTypes
	for _, l := range in.Ligand {
		for _, p := range in.Protein {
			dx, dy, dz := l.X-p.X, l.Y-p.Y, l.Z-p.Z
			r2 := dx*dx + dy*dy + dz*dz
			if r2 < 2.25 {
				r2 = 2.25
			}
			idx := l.Type*nt + p.Type
			s2 := in.sigma[idx] * in.sigma[idx] / r2
			s6 := s2 * s2 * s2
			want += 4*in.epsilon[idx]*(s6*s6-s6) + in.charge[idx]/math.Sqrt(r2)
		}
	}
	if math.Abs(in.Energies[0]-want) > 1e-9*math.Abs(want) {
		t.Fatalf("identity pose energy %g, direct %g", in.Energies[0], want)
	}
}

func TestEnergyContinuityInPose(t *testing.T) {
	// Small pose perturbations must produce small energy changes (the
	// property that makes the surrogate learnable).
	in, _ := New(smallConfig())
	base := append([]float64(nil), in.Poses[:6]...)
	in.ComputeEnergies()
	e0 := in.Energies[0]
	for d := 0; d < 6; d++ {
		in.Poses[d] = base[d] + 1e-5
	}
	in.ComputeEnergies()
	if math.Abs(in.Energies[0]-e0) > 1 {
		t.Fatalf("energy jumped %g for a 1e-5 pose perturbation", math.Abs(in.Energies[0]-e0))
	}
}

func TestRandomizePosesChangesInputs(t *testing.T) {
	in, _ := New(smallConfig())
	before := append([]float64(nil), in.Poses...)
	in.RandomizePoses(999)
	same := 0
	for i := range before {
		if before[i] == in.Poses[i] {
			same++
		}
	}
	if same == len(before) {
		t.Fatal("poses unchanged after RandomizePoses")
	}
}

func TestKernelTimed(t *testing.T) {
	in, _ := New(smallConfig())
	in.ComputeEnergies()
	if in.Device().KernelTime("fasten_main") <= 0 {
		t.Fatal("kernel time not recorded")
	}
}

func TestPosesMatrixShape(t *testing.T) {
	in, _ := New(smallConfig())
	data, n, f := in.PosesMatrix()
	if n != in.Cfg.NumPoses || f != 6 || len(data) != n*f {
		t.Fatalf("matrix %dx%d over %d elements", n, f, len(data))
	}
}

func TestDirectivesParseAndCount(t *testing.T) {
	src := Directives("m.gmod", "d.gh5")
	// Table II: MiniBUDE uses 4 directives.
	count := 0
	for _, line := range splitLines(src) {
		if len(line) > 0 && line[0] == '#' {
			count++
		}
	}
	if count != 4 {
		t.Fatalf("directive count = %d, want 4 (Table II)", count)
	}
}

func splitLines(s string) []string {
	var out []string
	start := 0
	for i := 0; i < len(s); i++ {
		if s[i] == '\n' {
			out = append(out, s[start:i])
			start = i + 1
		}
	}
	return append(out, s[start:])
}

// Property: pose energies are invariant under regeneration with the same
// seed (full determinism of the deck).
func TestPropSeedDeterminism(t *testing.T) {
	f := func(seed int64) bool {
		cfg := smallConfig()
		cfg.Seed = seed
		cfg.NumPoses = 16
		a, err := New(cfg)
		if err != nil {
			return false
		}
		b, err := New(cfg)
		if err != nil {
			return false
		}
		a.ComputeEnergies()
		b.ComputeEnergies()
		for i := range a.Energies {
			if a.Energies[i] != b.Energies[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Fatal(err)
	}
}
