// Package bonds is a Go port of the Bonds benchmark from the GPU
// financial suite of Grauer-Gray et al.: valuing a portfolio of
// fixed-rate bonds under a flat forward curve. For every bond the kernel
// builds its semiannual cashflow schedule, discounts each flow with
// compounded forward rates, and computes the accrued interest, clean and
// dirty prices, and yield-to-maturity by Newton iteration.
//
// QoI: the accrued interest of each bond. Metric: RMSE (Table I).
package bonds

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/device"
)

// Config sizes the portfolio.
type Config struct {
	NumBonds int
	Seed     int64
}

// DefaultConfig sizes the portfolio so the accurate path dominates the
// runtime but a single run stays in the millisecond range.
func DefaultConfig() Config { return Config{NumBonds: 8192, Seed: 13} }

// Instance is one generated portfolio plus result buffers.
type Instance struct {
	Cfg Config

	// Per-bond varying parameters (the region inputs):
	// Coupon rate (annual), flat forward/discount rate, maturity in
	// years from issue, and the settlement point as a fraction of the
	// current coupon period.
	Coupon   []float64
	Rate     []float64
	Maturity []float64
	Settle   []float64

	// Outputs (the region outputs / QoI):
	Accrued    []float64
	DirtyPrice []float64
	CleanPrice []float64
	YTM        []float64

	dev *device.Device
}

// New generates a deterministic portfolio.
func New(cfg Config) (*Instance, error) {
	if cfg.NumBonds <= 0 {
		return nil, fmt.Errorf("bonds: NumBonds must be positive, got %d", cfg.NumBonds)
	}
	in := &Instance{
		Cfg:        cfg,
		Coupon:     make([]float64, cfg.NumBonds),
		Rate:       make([]float64, cfg.NumBonds),
		Maturity:   make([]float64, cfg.NumBonds),
		Settle:     make([]float64, cfg.NumBonds),
		Accrued:    make([]float64, cfg.NumBonds),
		DirtyPrice: make([]float64, cfg.NumBonds),
		CleanPrice: make([]float64, cfg.NumBonds),
		YTM:        make([]float64, cfg.NumBonds),
		dev:        device.New("bonds"),
	}
	in.RandomizeBonds(cfg.Seed + 1)
	return in, nil
}

// RandomizeBonds refreshes the portfolio parameters: coupons 2–10%,
// rates 1–9%, maturities 1–30 years, settlement anywhere in the period.
func (in *Instance) RandomizeBonds(seed int64) {
	rng := rand.New(rand.NewSource(seed))
	for i := 0; i < in.Cfg.NumBonds; i++ {
		in.Coupon[i] = 0.02 + 0.08*rng.Float64()
		in.Rate[i] = 0.01 + 0.08*rng.Float64()
		in.Maturity[i] = 1 + 29*rng.Float64()
		in.Settle[i] = rng.Float64()
	}
}

// Device exposes the kernel-timing device.
func (in *Instance) Device() *device.Device { return in.dev }

const (
	faceValue   = 100.0
	periodsYear = 2 // semiannual coupons
)

// ComputeValuations is the accurate execution path: full valuation of
// every bond in the portfolio.
func (in *Instance) ComputeValuations() {
	in.dev.Launch1D("bondsKernel", in.Cfg.NumBonds, func(i int) {
		acc, dirty, clean, ytm := Value(in.Coupon[i], in.Rate[i], in.Maturity[i], in.Settle[i])
		in.Accrued[i] = acc
		in.DirtyPrice[i] = dirty
		in.CleanPrice[i] = clean
		in.YTM[i] = ytm
	})
}

// The synthetic calendar: months of alternating lengths summing to a
// 365-day year, as the original benchmark's QuantLib-derived date code
// walks real month tables. Dates are day numbers from the bond's issue.
var monthDays = [12]int{31, 28, 31, 30, 31, 30, 31, 31, 30, 31, 30, 31}

const daysPerYear = 365

// dayOfMonthStart walks the calendar month by month — the date-arithmetic
// loop that dominates the original Bonds kernel's cost.
func dayOfMonthStart(month int) int {
	days := 0
	for m := 0; m < month; m++ {
		days += monthDays[m%12]
	}
	return days
}

// yearFractionActual is the ACT/365 day-count fraction between two day
// numbers.
func yearFractionActual(d0, d1 int) float64 {
	return float64(d1-d0) / daysPerYear
}

// Value performs the full fixed-rate bond valuation under a flat forward
// curve and returns (accrued interest, dirty price, clean price, yield).
// Cashflow dates come from the synthetic calendar (semiannual coupons at
// 6-month steps), and every flow's discount time is a day-count fraction
// — matching where the original GPU benchmark spends its cycles.
//
// settle is the fraction of the current coupon period already elapsed at
// settlement; maturity counts years remaining from the start of the
// current period.
func Value(coupon, rate, maturity, settle float64) (accrued, dirty, clean, ytm float64) {
	couponAmt := faceValue * coupon / periodsYear
	nFlows := int(math.Ceil(maturity * periodsYear))
	if nFlows < 1 {
		nFlows = 1
	}
	// Settlement day within the first coupon period.
	periodDays := dayOfMonthStart(12 / periodsYear) // first period length in days
	settleDay := int(settle * float64(periodDays))

	// Accrued interest: coupon prorated by elapsed days (ACT/period).
	accrued = couponAmt * float64(settleDay) / float64(periodDays)

	// Dirty price: discount every remaining cashflow at the flat forward
	// rate with continuous compounding from the settlement date, with
	// each flow's date resolved through the calendar walk.
	for k := 1; k <= nFlows; k++ {
		flowDay := dayOfMonthStart(k * 12 / periodsYear)
		tFlow := yearFractionActual(settleDay, flowDay)
		flow := couponAmt
		if k == nFlows {
			flow += faceValue
		}
		dirty += flow * math.Exp(-rate*tFlow)
	}
	clean = dirty - accrued

	// Yield to maturity by Newton iteration on the dirty price, from a
	// fixed initial guess (the pricer does not know the curve is flat).
	// Flow dates are re-resolved through the calendar per iteration, as
	// the original kernel recomputes its schedule inside the solver loop.
	ytm = 0.05
	for iter := 0; iter < 40; iter++ {
		var price, dPrice float64
		for k := 1; k <= nFlows; k++ {
			flowDay := dayOfMonthStart(k * 12 / periodsYear)
			tFlow := yearFractionActual(settleDay, flowDay)
			flow := couponAmt
			if k == nFlows {
				flow += faceValue
			}
			df := math.Exp(-ytm * tFlow)
			price += flow * df
			dPrice -= tFlow * flow * df
		}
		diff := price - dirty
		if math.Abs(diff) < 1e-10 || dPrice == 0 {
			break
		}
		ytm -= diff / dPrice
	}
	return accrued, dirty, clean, ytm
}

// Directives returns the 4-directive HPAC-ML annotation (Table II): four
// per-bond parameters gather into one tensor; the accrued-interest QoI
// scatters back through an inline functor application.
func Directives(model, db string) string {
	return fmt.Sprintf(`
#pragma approx tensor functor(bond_in: [i, 0:4] = ([i]))
#pragma approx tensor functor(acc_out: [i, 0:1] = ([i]))
#pragma approx tensor map(to: bond_in(coupon[0:NB], rate[0:NB], maturity[0:NB], settle[0:NB]))
#pragma approx ml(predicated:useModel) in(coupon, rate, maturity, settle) out(acc_out(accrued[0:NB])) model(%q) db(%q)
`, model, db)
}
