package bonds

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewValidation(t *testing.T) {
	if _, err := New(Config{NumBonds: 0}); err == nil {
		t.Fatal("want error for zero bonds")
	}
}

func TestAccruedInterestFormula(t *testing.T) {
	// Accrued interest prorates the semiannual coupon by the elapsed
	// period fraction, discretized to the synthetic calendar's days.
	acc, _, _, _ := Value(0.06, 0.04, 10, 0.5)
	couponAmt := 100.0 * 0.06 / 2
	want := couponAmt * 0.5
	if math.Abs(acc-want) > couponAmt/100 { // within one day's accrual
		t.Fatalf("accrued = %g, want ~%g", acc, want)
	}
	acc0, _, _, _ := Value(0.06, 0.04, 10, 0)
	if acc0 != 0 {
		t.Fatalf("accrued at period start = %g, want 0", acc0)
	}
}

func TestCleanPlusAccruedIsDirty(t *testing.T) {
	acc, dirty, clean, _ := Value(0.08, 0.05, 7, 0.3)
	if math.Abs(clean+acc-dirty) > 1e-9 {
		t.Fatalf("clean %g + accrued %g != dirty %g", clean, acc, dirty)
	}
}

func TestParAtCouponEqualsRate(t *testing.T) {
	// With continuous compounding at the flat curve, a bond whose coupon
	// equals the rate prices close to par (small compounding mismatch).
	_, dirty, _, _ := Value(0.05, 0.05, 10, 0)
	if dirty < 95 || dirty > 105 {
		t.Fatalf("near-par bond priced at %g", dirty)
	}
}

func TestDiscountRateLowersPrice(t *testing.T) {
	_, lo, _, _ := Value(0.06, 0.02, 10, 0)
	_, hi, _, _ := Value(0.06, 0.09, 10, 0)
	if hi >= lo {
		t.Fatalf("higher rate must lower price: %g vs %g", hi, lo)
	}
}

func TestYTMRecoversFlatRate(t *testing.T) {
	// Under a flat continuous curve the Newton YTM equals the input rate.
	for _, rate := range []float64{0.02, 0.05, 0.08} {
		_, _, _, ytm := Value(0.06, rate, 12, 0.4)
		if math.Abs(ytm-rate) > 1e-6 {
			t.Fatalf("ytm %g, want %g", ytm, rate)
		}
	}
}

func TestPortfolioValuation(t *testing.T) {
	in, err := New(Config{NumBonds: 512, Seed: 21})
	if err != nil {
		t.Fatal(err)
	}
	in.ComputeValuations()
	for i := 0; i < in.Cfg.NumBonds; i++ {
		if math.IsNaN(in.Accrued[i]) || in.Accrued[i] < 0 {
			t.Fatalf("bond %d accrued invalid: %g", i, in.Accrued[i])
		}
		if in.DirtyPrice[i] <= 0 || in.DirtyPrice[i] > 400 {
			t.Fatalf("bond %d dirty price implausible: %g", i, in.DirtyPrice[i])
		}
		acc, dirty, clean, ytm := Value(in.Coupon[i], in.Rate[i], in.Maturity[i], in.Settle[i])
		if acc != in.Accrued[i] || dirty != in.DirtyPrice[i] || clean != in.CleanPrice[i] || ytm != in.YTM[i] {
			t.Fatalf("kernel result differs from direct valuation at %d", i)
		}
	}
	if in.Device().KernelTime("bondsKernel") <= 0 {
		t.Fatal("kernel not timed")
	}
}

func TestDeterministicPortfolio(t *testing.T) {
	a, _ := New(Config{NumBonds: 64, Seed: 5})
	b, _ := New(Config{NumBonds: 64, Seed: 5})
	a.ComputeValuations()
	b.ComputeValuations()
	for i := range a.Accrued {
		if a.Accrued[i] != b.Accrued[i] {
			t.Fatal("portfolio not deterministic")
		}
	}
}

func TestDirectiveCount(t *testing.T) {
	src := Directives("m", "d")
	count := 0
	for i := 0; i+1 < len(src); i++ {
		if src[i] == '\n' && src[i+1] == '#' {
			count++
		}
	}
	if count != 4 {
		t.Fatalf("directive count = %d, want 4 (Table II)", count)
	}
}

// Property: accrued interest is linear in the settlement fraction up to
// the calendar's one-day discretization.
func TestPropAccruedLinearInSettle(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		coupon := 0.02 + 0.08*rng.Float64()
		rate := 0.01 + 0.08*rng.Float64()
		mat := 1 + 29*rng.Float64()
		s := rng.Float64()
		a1, _, _, _ := Value(coupon, rate, mat, s)
		a2, _, _, _ := Value(coupon, rate, mat, s/2)
		dayAccrual := 100 * coupon / 2 / 180
		return math.Abs(a1-2*a2) < 2.5*dayAccrual
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Property: longer maturity at a coupon above the rate raises the dirty
// price (more above-market coupons to collect).
func TestPropPriceGrowsWithMaturityWhenCouponAboveRate(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		rate := 0.01 + 0.04*rng.Float64()
		coupon := rate + 0.03 + 0.02*rng.Float64()
		m1 := 1 + 10*rng.Float64()
		m2 := m1 + 1 + 10*rng.Float64()
		_, p1, _, _ := Value(coupon, rate, m1, 0)
		_, p2, _, _ := Value(coupon, rate, m2, 0)
		return p2 >= p1-1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
