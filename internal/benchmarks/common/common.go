// Package common provides the quantities-of-interest machinery shared by
// the benchmark suite: the error metrics of Table I (RMSE, MAPE), the
// relative-error CDF of Figure 9f, dataset splitting, and benchmark
// registry metadata for Tables I and II.
package common

import (
	"embed"
	"fmt"
	"math"
	"sort"
	"strings"
)

// EmbeddedLoC sums CountLoC over every non-test .go file in an embedded
// source tree — how the benchmark packages report their Table II Total
// LoC column.
func EmbeddedLoC(fs embed.FS) int {
	total := 0
	entries, err := fs.ReadDir(".")
	if err != nil {
		return 0
	}
	for _, e := range entries {
		if e.IsDir() || strings.HasSuffix(e.Name(), "_test.go") {
			continue
		}
		data, err := fs.ReadFile(e.Name())
		if err != nil {
			continue
		}
		total += CountLoC(string(data))
	}
	return total
}

// DirectiveStats counts pragma lines and total non-empty annotation lines
// in a directive block — the HPAC-ML LoC and directive-count columns of
// Table II.
func DirectiveStats(src string) (loc, directives int) {
	for _, line := range splitLines(src) {
		t := trimSpace(line)
		if t == "" || hasPrefix(t, "//") {
			continue
		}
		loc++
		if hasPrefix(t, "#pragma") {
			directives++
		}
	}
	return loc, directives
}

// RMSE returns the root-mean-square error between two equally long series.
func RMSE(pred, ref []float64) (float64, error) {
	if len(pred) != len(ref) || len(pred) == 0 {
		return 0, fmt.Errorf("common: RMSE wants equal non-empty series, got %d and %d", len(pred), len(ref))
	}
	var s float64
	for i := range pred {
		d := pred[i] - ref[i]
		s += d * d
	}
	return math.Sqrt(s / float64(len(pred))), nil
}

// MAPE returns the mean absolute percentage error (in percent), skipping
// reference values of exactly zero to avoid division by zero.
func MAPE(pred, ref []float64) (float64, error) {
	if len(pred) != len(ref) || len(pred) == 0 {
		return 0, fmt.Errorf("common: MAPE wants equal non-empty series, got %d and %d", len(pred), len(ref))
	}
	var s float64
	n := 0
	for i := range pred {
		if ref[i] == 0 {
			continue
		}
		s += math.Abs((pred[i] - ref[i]) / ref[i])
		n++
	}
	if n == 0 {
		return 0, fmt.Errorf("common: MAPE undefined, all reference values are zero")
	}
	return 100 * s / float64(n), nil
}

// MaxAbsErr returns the maximum absolute difference.
func MaxAbsErr(pred, ref []float64) (float64, error) {
	if len(pred) != len(ref) || len(pred) == 0 {
		return 0, fmt.Errorf("common: MaxAbsErr wants equal non-empty series")
	}
	var m float64
	for i := range pred {
		if d := math.Abs(pred[i] - ref[i]); d > m {
			m = d
		}
	}
	return m, nil
}

// RelativeErrors returns |pred-ref| / max(|ref|, floor) per element — the
// quantity whose CDF Figure 9f plots. floor guards near-zero references.
func RelativeErrors(pred, ref []float64, floor float64) ([]float64, error) {
	if len(pred) != len(ref) || len(pred) == 0 {
		return nil, fmt.Errorf("common: RelativeErrors wants equal non-empty series")
	}
	if floor <= 0 {
		floor = 1e-12
	}
	out := make([]float64, len(pred))
	for i := range pred {
		den := math.Abs(ref[i])
		if den < floor {
			den = floor
		}
		out[i] = math.Abs(pred[i]-ref[i]) / den
	}
	return out, nil
}

// CDF summarizes a sample as quantile points: for each requested fraction
// p in (0,1], the value below which a fraction p of the sample lies.
type CDF struct {
	Sorted []float64
}

// NewCDF builds a CDF summary (sorting a copy of the sample).
func NewCDF(sample []float64) (*CDF, error) {
	if len(sample) == 0 {
		return nil, fmt.Errorf("common: CDF of empty sample")
	}
	s := append([]float64(nil), sample...)
	sort.Float64s(s)
	return &CDF{Sorted: s}, nil
}

// Quantile returns the value at fraction p of the distribution.
func (c *CDF) Quantile(p float64) float64 {
	if p <= 0 {
		return c.Sorted[0]
	}
	if p >= 1 {
		return c.Sorted[len(c.Sorted)-1]
	}
	idx := p * float64(len(c.Sorted)-1)
	lo := int(idx)
	frac := idx - float64(lo)
	if lo+1 >= len(c.Sorted) {
		return c.Sorted[lo]
	}
	return c.Sorted[lo]*(1-frac) + c.Sorted[lo+1]*frac
}

// FractionBelow returns the fraction of the sample <= x.
func (c *CDF) FractionBelow(x float64) float64 {
	n := sort.SearchFloat64s(c.Sorted, math.Nextafter(x, math.Inf(1)))
	return float64(n) / float64(len(c.Sorted))
}

// Metric names the QoI error metric of a benchmark (Table I).
type Metric string

// Table I metrics.
const (
	MetricRMSE Metric = "RMSE"
	MetricMAPE Metric = "MAPE"
)

// Info is a benchmark's registry entry: the content of Table I plus the
// Table II annotation accounting, filled in by each benchmark package.
type Info struct {
	Name        string
	Description string
	QoI         string
	Metric      Metric
	// TotalLoC is the benchmark's Go source size; DirectiveCount and
	// HPACMLLoC are the annotation burden (Table II).
	TotalLoC       int
	HPACMLLoC      int
	DirectiveCount int
}

// GeoMean returns the geometric mean of positive values (used by the
// paper's "geometric mean of maximum speedup" summary).
func GeoMean(vals []float64) (float64, error) {
	if len(vals) == 0 {
		return 0, fmt.Errorf("common: GeoMean of empty slice")
	}
	var s float64
	for _, v := range vals {
		if v <= 0 {
			return 0, fmt.Errorf("common: GeoMean wants positive values, got %g", v)
		}
		s += math.Log(v)
	}
	return math.Exp(s / float64(len(vals))), nil
}

// CountLoC counts non-empty, non-comment-only lines in source text — the
// clang-format-style LoC metric of Table II applied to Go sources.
func CountLoC(src string) int {
	n := 0
	inBlock := false
	for _, line := range splitLines(src) {
		t := trimSpace(line)
		if inBlock {
			if idx := indexOf(t, "*/"); idx >= 0 {
				inBlock = false
				t = trimSpace(t[idx+2:])
			} else {
				continue
			}
		}
		if t == "" || hasPrefix(t, "//") {
			continue
		}
		if hasPrefix(t, "/*") {
			if indexOf(t, "*/") < 0 {
				inBlock = true
			}
			continue
		}
		n++
	}
	return n
}

// Minimal string helpers to keep this package dependency-free.
func splitLines(s string) []string {
	var out []string
	start := 0
	for i := 0; i < len(s); i++ {
		if s[i] == '\n' {
			out = append(out, s[start:i])
			start = i + 1
		}
	}
	out = append(out, s[start:])
	return out
}

func trimSpace(s string) string {
	i, j := 0, len(s)
	for i < j && (s[i] == ' ' || s[i] == '\t' || s[i] == '\r') {
		i++
	}
	for j > i && (s[j-1] == ' ' || s[j-1] == '\t' || s[j-1] == '\r') {
		j--
	}
	return s[i:j]
}

func hasPrefix(s, p string) bool {
	return len(s) >= len(p) && s[:len(p)] == p
}

func indexOf(s, sub string) int {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return i
		}
	}
	return -1
}
