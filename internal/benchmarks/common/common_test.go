package common

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestRMSE(t *testing.T) {
	v, err := RMSE([]float64{1, 2, 3}, []float64{1, 2, 3})
	if err != nil || v != 0 {
		t.Fatalf("identical series RMSE = %g, %v", v, err)
	}
	v, err = RMSE([]float64{3, 0}, []float64{0, 4})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(v-math.Sqrt(12.5)) > 1e-12 {
		t.Fatalf("RMSE = %g", v)
	}
	if _, err := RMSE([]float64{1}, []float64{1, 2}); err == nil {
		t.Fatal("want length mismatch error")
	}
	if _, err := RMSE(nil, nil); err == nil {
		t.Fatal("want empty error")
	}
}

func TestMAPE(t *testing.T) {
	v, err := MAPE([]float64{110, 90}, []float64{100, 100})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(v-10) > 1e-12 {
		t.Fatalf("MAPE = %g, want 10", v)
	}
	// Zero references are skipped.
	v, err = MAPE([]float64{110, 5}, []float64{100, 0})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(v-10) > 1e-12 {
		t.Fatalf("MAPE with zero ref = %g", v)
	}
	if _, err := MAPE([]float64{1}, []float64{0}); err == nil {
		t.Fatal("want all-zero-reference error")
	}
}

func TestMaxAbsErr(t *testing.T) {
	v, err := MaxAbsErr([]float64{1, 5, 2}, []float64{1, 1, 1})
	if err != nil || v != 4 {
		t.Fatalf("MaxAbsErr = %g, %v", v, err)
	}
}

func TestRelativeErrors(t *testing.T) {
	re, err := RelativeErrors([]float64{2, 0.5}, []float64{1, 1}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if re[0] != 1 || re[1] != 0.5 {
		t.Fatalf("relative errors = %v", re)
	}
	// Floor guards near-zero references.
	re, err = RelativeErrors([]float64{1}, []float64{1e-20}, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	if re[0] > 10.01 {
		t.Fatalf("floored relative error = %g", re[0])
	}
}

func TestCDF(t *testing.T) {
	c, err := NewCDF([]float64{4, 1, 3, 2})
	if err != nil {
		t.Fatal(err)
	}
	if c.Quantile(0) != 1 || c.Quantile(1) != 4 {
		t.Fatalf("extremes = %g %g", c.Quantile(0), c.Quantile(1))
	}
	if q := c.Quantile(0.5); math.Abs(q-2.5) > 1e-12 {
		t.Fatalf("median = %g", q)
	}
	if f := c.FractionBelow(2); math.Abs(f-0.5) > 1e-12 {
		t.Fatalf("fraction below 2 = %g", f)
	}
	if f := c.FractionBelow(100); f != 1 {
		t.Fatalf("fraction below max = %g", f)
	}
	if _, err := NewCDF(nil); err == nil {
		t.Fatal("want empty sample error")
	}
}

func TestGeoMean(t *testing.T) {
	v, err := GeoMean([]float64{2, 8})
	if err != nil || v != 4 {
		t.Fatalf("geomean = %g, %v", v, err)
	}
	if _, err := GeoMean([]float64{1, -1}); err == nil {
		t.Fatal("want positivity error")
	}
	if _, err := GeoMean(nil); err == nil {
		t.Fatal("want empty error")
	}
}

func TestCountLoC(t *testing.T) {
	src := `package x

// a comment
/* block
comment */
func f() { // trailing comment counts as code
	return
}
`
	if got := CountLoC(src); got != 4 {
		t.Fatalf("CountLoC = %d, want 4", got)
	}
}

func TestDirectiveStats(t *testing.T) {
	src := `
// commentary
#pragma approx tensor functor(f: [i, 0:1] = ([i]))
#pragma approx ml(infer) inout(x) model("m")
`
	loc, n := DirectiveStats(src)
	if loc != 2 || n != 2 {
		t.Fatalf("stats = %d, %d", loc, n)
	}
}

// Property: RMSE is translation-invariant and scales linearly.
func TestPropRMSEScaling(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(20)
		a := make([]float64, n)
		b := make([]float64, n)
		for i := range a {
			a[i], b[i] = rng.NormFloat64(), rng.NormFloat64()
		}
		base, err := RMSE(a, b)
		if err != nil {
			return false
		}
		shift := rng.NormFloat64()
		scale := 1 + rng.Float64()*3
		a2 := make([]float64, n)
		b2 := make([]float64, n)
		for i := range a {
			a2[i] = a[i]*scale + shift
			b2[i] = b[i]*scale + shift
		}
		scaled, err := RMSE(a2, b2)
		if err != nil {
			return false
		}
		return math.Abs(scaled-base*scale) < 1e-9*(1+scaled)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: CDF quantiles are monotone non-decreasing in p.
func TestPropCDFMonotone(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(50)
		sample := make([]float64, n)
		for i := range sample {
			sample[i] = rng.NormFloat64()
		}
		c, err := NewCDF(sample)
		if err != nil {
			return false
		}
		prev := math.Inf(-1)
		for p := 0.0; p <= 1.0; p += 0.05 {
			q := c.Quantile(p)
			if q < prev {
				return false
			}
			prev = q
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
