// Package particlefilter is a Go port of the Rodinia ParticleFilter
// benchmark (Che et al.): statistical estimation of a moving object's
// location in a synthetic, noisy video. The original application is
// itself an algorithmic approximation — a sequential Monte-Carlo filter
// with likelihood evaluation and systematic resampling over thousands of
// particles per frame. The paper's Observation 1 shows a CNN surrogate
// over the raw frames beats that approximation in both speed and
// accuracy; this port reproduces both paths.
//
// QoI: the estimated object location per frame. Metric: RMSE (Table I).
package particlefilter

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/device"
)

// Config sizes the video and the filter.
type Config struct {
	FrameSize int // frames are FrameSize x FrameSize pixels
	NumFrames int
	Particles int
	Seed      int64
}

// DefaultConfig matches a Rodinia-style small video with a heavy filter.
func DefaultConfig() Config {
	return Config{FrameSize: 32, NumFrames: 32, Particles: 4096, Seed: 17}
}

// Instance holds the synthetic video, the ground truth track, and the
// filter state.
type Instance struct {
	Cfg Config

	// Video is [NumFrames][FrameSize][FrameSize] pixel intensities in
	// [0, 255]; the region's input array (one frame at a time).
	Video []float64
	// TruthX/TruthY is the ground-truth object location per frame — the
	// training target captured during collection.
	TruthX []float64
	TruthY []float64
	// EstX/EstY is the filter's (or surrogate's) estimate per frame: the
	// QoI.
	EstX []float64
	EstY []float64

	// Filter state.
	px, py   []float64
	weights  []float64
	cdf      []float64
	rng      *rand.Rand
	template []int // disk offsets (dy, dx interleaved)

	dev *device.Device
}

// Object appearance constants from the Rodinia generator: the object is a
// disk of foreground intensity on a darker background, plus Gaussian
// noise.
const (
	diskRadius = 5
	background = 100.0
	foreground = 228.0
	pixelNoise = 12.0
)

// New synthesizes the video and ground truth and prepares the filter.
func New(cfg Config) (*Instance, error) {
	if cfg.FrameSize < 16 || cfg.NumFrames <= 0 || cfg.Particles <= 0 {
		return nil, fmt.Errorf("particlefilter: bad config %+v", cfg)
	}
	in := &Instance{
		Cfg:     cfg,
		Video:   make([]float64, cfg.NumFrames*cfg.FrameSize*cfg.FrameSize),
		TruthX:  make([]float64, cfg.NumFrames),
		TruthY:  make([]float64, cfg.NumFrames),
		EstX:    make([]float64, cfg.NumFrames),
		EstY:    make([]float64, cfg.NumFrames),
		px:      make([]float64, cfg.Particles),
		py:      make([]float64, cfg.Particles),
		weights: make([]float64, cfg.Particles),
		cdf:     make([]float64, cfg.Particles),
		rng:     rand.New(rand.NewSource(cfg.Seed)),
		dev:     device.New("particlefilter"),
	}
	for dy := -diskRadius; dy <= diskRadius; dy++ {
		for dx := -diskRadius; dx <= diskRadius; dx++ {
			if dy*dy+dx*dx <= diskRadius*diskRadius {
				in.template = append(in.template, dy, dx)
			}
		}
	}
	in.SynthesizeVideo(cfg.Seed)
	return in, nil
}

// SynthesizeVideo regenerates the video with a fresh trajectory: the
// object starts near a corner and drifts diagonally with process noise
// (the Rodinia dynamics x += 1, y += 2 plus noise), bouncing at walls.
func (in *Instance) SynthesizeVideo(seed int64) {
	cfg := in.Cfg
	rng := rand.New(rand.NewSource(seed))
	fs := float64(cfg.FrameSize)
	x := fs * 0.25
	y := fs * 0.25
	vx, vy := 1.0, 2.0
	for f := 0; f < cfg.NumFrames; f++ {
		x += vx + rng.NormFloat64()*0.25
		y += vy + rng.NormFloat64()*0.5
		if x < diskRadius+1 || x > fs-diskRadius-2 {
			vx = -vx
			x = math.Max(diskRadius+1, math.Min(fs-diskRadius-2, x))
		}
		if y < diskRadius+1 || y > fs-diskRadius-2 {
			vy = -vy
			y = math.Max(diskRadius+1, math.Min(fs-diskRadius-2, y))
		}
		in.TruthX[f] = x
		in.TruthY[f] = y
		base := f * cfg.FrameSize * cfg.FrameSize
		for py := 0; py < cfg.FrameSize; py++ {
			for px := 0; px < cfg.FrameSize; px++ {
				dx := float64(px) - x
				dy := float64(py) - y
				v := background
				if dx*dx+dy*dy <= diskRadius*diskRadius {
					v = foreground
				}
				v += rng.NormFloat64() * pixelNoise
				if v < 0 {
					v = 0
				}
				if v > 255 {
					v = 255
				}
				in.Video[base+py*cfg.FrameSize+px] = v
			}
		}
	}
}

// Frame returns the pixel slice of frame f (aliased, not copied).
func (in *Instance) Frame(f int) []float64 {
	n := in.Cfg.FrameSize * in.Cfg.FrameSize
	return in.Video[f*n : (f+1)*n]
}

// Device exposes the kernel-timing device.
func (in *Instance) Device() *device.Device { return in.dev }

// ResetFilter re-seeds the particles at the first ground-truth location,
// as the Rodinia code does.
func (in *Instance) ResetFilter() {
	in.rng = rand.New(rand.NewSource(in.Cfg.Seed + 99))
	for p := 0; p < in.Cfg.Particles; p++ {
		in.px[p] = in.TruthX[0]
		in.py[p] = in.TruthY[0]
	}
}

// RunFilterFrame is the accurate execution path for one frame: propagate
// particles, compute likelihoods against the frame, normalize, estimate,
// and resample. It returns the location estimate.
func (in *Instance) RunFilterFrame(f int) (x, y float64) {
	cfg := in.Cfg
	frame := in.Frame(f)
	fs := cfg.FrameSize

	// Propagation with the known dynamics plus process noise (drawn
	// serially for determinism, as Rodinia does with its LCG).
	for p := 0; p < cfg.Particles; p++ {
		in.px[p] += 1 + in.rng.NormFloat64()*1.0
		in.py[p] += 2 + in.rng.NormFloat64()*2.0
	}

	// Likelihood kernel: for each particle, compare the disk template
	// against the frame (the Rodinia likelihood with foreground and
	// background hypotheses).
	in.dev.Launch1D("likelihood", cfg.Particles, func(p int) {
		cx := int(math.Round(in.px[p]))
		cy := int(math.Round(in.py[p]))
		var like float64
		nPts := len(in.template) / 2
		for ti := 0; ti < len(in.template); ti += 2 {
			yy := cy + in.template[ti]
			xx := cx + in.template[ti+1]
			if yy < 0 {
				yy = 0
			}
			if yy >= fs {
				yy = fs - 1
			}
			if xx < 0 {
				xx = 0
			}
			if xx >= fs {
				xx = fs - 1
			}
			v := frame[yy*fs+xx]
			like += (v-background)*(v-background) - (v-foreground)*(v-foreground)
		}
		in.weights[p] = like / float64(nPts) / (2 * pixelNoise * pixelNoise)
	})

	// Normalize in log space for stability, then estimate.
	maxW := math.Inf(-1)
	for _, w := range in.weights {
		if w > maxW {
			maxW = w
		}
	}
	var sum float64
	for p := range in.weights {
		in.weights[p] = math.Exp(in.weights[p] - maxW)
		sum += in.weights[p]
	}
	for p := range in.weights {
		in.weights[p] /= sum
		x += in.px[p] * in.weights[p]
		y += in.py[p] * in.weights[p]
	}

	// Systematic resampling through the weight CDF.
	acc := 0.0
	for p := range in.weights {
		acc += in.weights[p]
		in.cdf[p] = acc
	}
	u0 := in.rng.Float64() / float64(cfg.Particles)
	newX := make([]float64, cfg.Particles)
	newY := make([]float64, cfg.Particles)
	j := 0
	for p := 0; p < cfg.Particles; p++ {
		u := u0 + float64(p)/float64(cfg.Particles)
		for j < cfg.Particles-1 && in.cdf[j] < u {
			j++
		}
		newX[p] = in.px[j]
		newY[p] = in.py[j]
	}
	copy(in.px, newX)
	copy(in.py, newY)
	return x, y
}

// RunFilter runs the accurate particle filter over every frame, filling
// EstX/EstY.
func (in *Instance) RunFilter() {
	in.ResetFilter()
	for f := 0; f < in.Cfg.NumFrames; f++ {
		in.EstX[f], in.EstY[f] = in.RunFilterFrame(f)
	}
}

// TrackRMSE returns the RMSE of the estimates against ground truth over
// both coordinates — the benchmark QoI error.
func (in *Instance) TrackRMSE() float64 {
	var s float64
	n := 0
	for f := 0; f < in.Cfg.NumFrames; f++ {
		dx := in.EstX[f] - in.TruthX[f]
		dy := in.EstY[f] - in.TruthY[f]
		s += dx*dx + dy*dy
		n += 2
	}
	return math.Sqrt(s / float64(n))
}

// Directives returns the 4-directive HPAC-ML annotation (Table II): the
// frame gathers as an image, the location estimate scatters back through
// an inline functor application.
func Directives(model, db string) string {
	return fmt.Sprintf(`
#pragma approx tensor functor(pix: [i, j, 0:1] = ([i, j]))
#pragma approx tensor functor(loc: [i, 0:2] = ([i, 0:2]))
#pragma approx tensor map(to: pix(frame[0:FS, 0:FS]))
#pragma approx ml(predicated:useModel) in(frame) out(loc(est[0:1, 0:2])) model(%q) db(%q)
`, model, db)
}
