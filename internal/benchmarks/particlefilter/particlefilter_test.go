package particlefilter

import (
	"math"
	"testing"
)

func smallConfig() Config {
	return Config{FrameSize: 32, NumFrames: 12, Particles: 512, Seed: 3}
}

func TestNewValidation(t *testing.T) {
	bad := []Config{
		{FrameSize: 8, NumFrames: 4, Particles: 16},
		{FrameSize: 32, NumFrames: 0, Particles: 16},
		{FrameSize: 32, NumFrames: 4, Particles: 0},
	}
	for _, c := range bad {
		if _, err := New(c); err == nil {
			t.Errorf("config %+v: want error", c)
		}
	}
}

func TestVideoPixelsInRange(t *testing.T) {
	in, err := New(smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range in.Video {
		if v < 0 || v > 255 {
			t.Fatalf("pixel %d out of range: %g", i, v)
		}
	}
}

func TestTruthStaysInFrame(t *testing.T) {
	in, _ := New(smallConfig())
	fs := float64(in.Cfg.FrameSize)
	for f := 0; f < in.Cfg.NumFrames; f++ {
		if in.TruthX[f] < 0 || in.TruthX[f] >= fs || in.TruthY[f] < 0 || in.TruthY[f] >= fs {
			t.Fatalf("frame %d: truth (%g, %g) outside %gx%g", f, in.TruthX[f], in.TruthY[f], fs, fs)
		}
	}
}

func TestObjectBrighterThanBackground(t *testing.T) {
	in, _ := New(smallConfig())
	frame := in.Frame(0)
	fs := in.Cfg.FrameSize
	cx, cy := int(in.TruthX[0]), int(in.TruthY[0])
	objectPix := frame[cy*fs+cx]
	cornerPix := frame[0]
	if objectPix <= cornerPix {
		t.Fatalf("object pixel %g not brighter than corner %g", objectPix, cornerPix)
	}
}

func TestFilterTracksObject(t *testing.T) {
	in, _ := New(smallConfig())
	in.RunFilter()
	rmse := in.TrackRMSE()
	// The Rodinia filter tracks within a pixel or two on this easy video.
	if rmse > 3.0 {
		t.Fatalf("filter lost the object: RMSE %g", rmse)
	}
	if rmse == 0 {
		t.Fatal("exact zero RMSE is implausible for a stochastic filter")
	}
}

func TestFilterDeterministicGivenSeed(t *testing.T) {
	a, _ := New(smallConfig())
	b, _ := New(smallConfig())
	a.RunFilter()
	b.RunFilter()
	for f := range a.EstX {
		if a.EstX[f] != b.EstX[f] || a.EstY[f] != b.EstY[f] {
			t.Fatal("filter not deterministic")
		}
	}
}

func TestSynthesizeVideoChangesWithSeed(t *testing.T) {
	in, _ := New(smallConfig())
	x0 := append([]float64(nil), in.TruthX...)
	in.SynthesizeVideo(999)
	same := true
	for f := range x0 {
		if x0[f] != in.TruthX[f] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("new seed produced identical trajectory")
	}
}

func TestFrameAliasesVideo(t *testing.T) {
	in, _ := New(smallConfig())
	f := in.Frame(2)
	f[0] = -123
	if in.Video[2*in.Cfg.FrameSize*in.Cfg.FrameSize] != -123 {
		t.Fatal("Frame must alias the video buffer")
	}
}

func TestLikelihoodKernelTimed(t *testing.T) {
	in, _ := New(smallConfig())
	in.RunFilter()
	if in.Device().KernelTime("likelihood") <= 0 {
		t.Fatal("likelihood kernel not timed")
	}
}

func TestWeightsFormDistribution(t *testing.T) {
	in, _ := New(smallConfig())
	in.ResetFilter()
	in.RunFilterFrame(0)
	var sum float64
	for _, w := range in.weights {
		if w < 0 {
			t.Fatalf("negative weight %g", w)
		}
		sum += w
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Fatalf("weights sum to %g, want 1", sum)
	}
}

func TestDirectiveCount(t *testing.T) {
	src := Directives("m", "d")
	count := 0
	for i := 0; i+1 < len(src); i++ {
		if src[i] == '\n' && src[i+1] == '#' {
			count++
		}
	}
	if count != 4 {
		t.Fatalf("directive count = %d, want 4 (Table II)", count)
	}
}
