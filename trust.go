package hpacml

import (
	"context"
	"fmt"
	"time"

	"repro/internal/directive"
	"repro/internal/tensor"
)

// This file is the trust-routing layer: the runtime half of the
// trust(...) directive clause. A gated FallbackEngine (input-domain
// guardrail and/or ensemble-variance threshold) reports per-row
// verdicts after each inference; the Region keeps the surrogate's
// output only for trusted rows, recomputes the rest with the accurate
// path, and hands the recomputed samples to the capture sink — so the
// inputs the surrogate handles worst are exactly the ones the next
// training round sees most.

// TrustConfig is the runtime form of the trust(...) clause, injectable
// with WithTrust (which overrides the annotation, the same precedence
// WithModel has over model()).
type TrustConfig struct {
	// MaxVariance engages the predictive-variance gate: rows whose
	// ensemble variance exceeds it are rejected. It requires an engine
	// that implements VarianceReporter (e.g. EnsembleEngine); 0
	// disables the gate.
	MaxVariance float64
	// Domain engages the input-domain guardrail gate: rows outside the
	// fitted envelope are rejected.
	Domain bool
	// GuardrailPath overrides where the domain gate loads its fitted
	// envelope from; empty defaults to GuardrailPath(modelPath), the
	// sidecar beside the .gmod. Remote model URIs have no local sidecar
	// and must set it explicitly.
	GuardrailPath string
}

// WithTrust configures per-row trust routing, overriding the region's
// trust(...) clause. At least one gate must be selected.
func WithTrust(cfg TrustConfig) Option {
	return func(r *Region) error {
		if cfg.MaxVariance < 0 {
			return fmt.Errorf("hpacml: WithTrust: negative variance threshold %g", cfg.MaxVariance)
		}
		if cfg.MaxVariance == 0 && !cfg.Domain {
			return fmt.Errorf("hpacml: WithTrust selects no gate (want MaxVariance > 0 and/or Domain)")
		}
		r.trust = &cfg
		return nil
	}
}

// ensureTrustEngine wires the resolved trust configuration into the
// engine: the engine is wrapped in a FallbackEngine if it is not one
// already, the variance threshold is set, and the guardrail sidecar is
// loaded for the domain gate. Runs once, lazily, after ensureEngine —
// the sidecar is a file read that must not happen at construction.
func (r *Region) ensureTrustEngine() error {
	if r.trust == nil || r.trustWired {
		return nil
	}
	fb, ok := r.engine.(*FallbackEngine)
	if !ok {
		fb = NewFallbackEngine(r.engine)
		// The wrapper inherits the wrapped engine's ownership: Close on
		// an owned chain releases the primary through the wrapper;
		// injected engines stay the caller's.
		r.setEngine(fb, r.engineOwned)
	}
	if fb.MaxVariance == 0 {
		fb.MaxVariance = r.trust.MaxVariance
	}
	if r.trust.Domain && fb.Guardrail == nil {
		path := r.trust.GuardrailPath
		if path == "" {
			if r.modelPath == "" || directive.IsRemoteModel(r.modelPath) {
				return fmt.Errorf("hpacml: region %q: trust(domain:on) needs a guardrail sidecar; set TrustConfig.GuardrailPath for remote models", r.name)
			}
			path = GuardrailPath(r.modelPath)
		}
		g, err := LoadGuardrail(path)
		if err != nil {
			return fmt.Errorf("hpacml: region %q: %w", r.name, err)
		}
		fb.Guardrail = g
	}
	r.trustWired = true
	return nil
}

// inputRows is the trust-accounting row count of a model input tensor:
// its leading (entry/batch) dimension.
func inputRows(x *tensor.Tensor) int {
	if x.Rank() >= 1 {
		return x.Dim(0)
	}
	return 1
}

// countTrust folds one trust report into the stats counters. The
// domain verdict wins when a row tripped both gates. keptTrusted says
// whether the trusted rows' surrogate outputs were actually used
// (false when the whole invocation was routed to the accurate path,
// which discards them).
func (r *Region) countTrust(rep *TrustReport, keptTrusted bool) {
	for i := 0; i < rep.Rows; i++ {
		switch {
		case rep.OOD[i]:
			r.stats.OutOfDomainRows++
		case rep.Uncertain[i]:
			r.stats.UncertainRows++
		default:
			if keptTrusted {
				r.stats.TrustedRows++
			}
		}
	}
}

// blockUntrusted reports whether any row of the half-open row range
// [at, at+per) was rejected.
func blockUntrusted(rep *TrustReport, at, per int) bool {
	for i := at; i < at+per && i < rep.Rows; i++ {
		if rep.OOD[i] || rep.Uncertain[i] {
			return true
		}
	}
	return false
}

// routeUntrustedSingle handles a single invocation whose trust report
// rejected at least one row: the surrogate's output is discarded, the
// rejected rows are counted, the accurate closure recomputes the
// invocation, and the recomputed sample is recaptured through the sink
// when the region has a capture target.
func (r *Region) routeUntrustedSingle(rep *TrustReport, accurate func() error) error {
	r.countTrust(rep, false)
	start := time.Now()
	inputs, err := r.modelInput()
	r.stats.ToTensor += time.Since(start)
	if err != nil {
		return err
	}
	runStart := time.Now()
	if err := accurate(); err != nil {
		return err
	}
	runtime := time.Since(runStart)
	r.stats.Accurate += runtime
	r.stats.AccurateRuns++
	return r.recaptureInvocation(inputs, runtime)
}

// recaptureInvocation hands one accurately recomputed invocation to
// the capture sink — the retraining loop's feedstock. inputs must have
// been gathered before the accurate run (inout arrays are overwritten
// by it). Regions with no capture target (no db() clause, no injected
// sink) skip the capture but keep the routing.
func (r *Region) recaptureInvocation(inputs *tensor.Tensor, runtime time.Duration) error {
	if r.sink == nil && r.dbPath == "" {
		return nil
	}
	start := time.Now()
	outputs, err := r.modelTarget()
	r.stats.FromTensor += time.Since(start)
	if err != nil {
		return err
	}
	start = time.Now()
	defer func() { r.stats.DBWrite += time.Since(start) }()
	if err := r.ensureSink(); err != nil {
		return err
	}
	r.stats.Collections++
	return r.sink.Capture(&CaptureRecord{
		Region:    r.name,
		Inputs:    inputs,
		Outputs:   outputs,
		RuntimeNS: float64(runtime.Nanoseconds()),
	})
}

// ExecuteBatchRouted is ExecuteBatch with per-invocation trust routing
// and accurate fallback: the surrogate predicts the whole batch once,
// then each invocation whose rows the trust gates accept is scattered
// back as usual, while invocations with any rejected row are re-staged
// (stage(i) must be repeatable), recomputed by accurate(i), and
// recaptured through the sink. When the engine carries the fallback
// policy and fails outright — server down mid-run, model unloadable,
// context expired — the entire batch degrades to the accurate path
// invocation by invocation (counted in Stats.Fallbacks), so no
// invocation is ever lost to an engine failure.
//
// The callbacks see exactly one ordering guarantee: each invocation's
// application state is staged/scattered immediately before its
// finish(i) call, in index order. stage and finish may be nil;
// accurate must not be.
func (r *Region) ExecuteBatchRouted(ctx context.Context, n int, stage func(i int) error, accurate func(i int) error, finish func(i int) error) error {
	if r.closed {
		return fmt.Errorf("hpacml: region %q used after Close", r.name)
	}
	if n <= 0 {
		return nil
	}
	if accurate == nil {
		return fmt.Errorf("hpacml: ExecuteBatchRouted in region %q needs an accurate callback (use ExecuteBatch otherwise)", r.name)
	}
	if ctx == nil {
		ctx = context.Background()
	}
	if err := r.requireInference(); err != nil {
		return err
	}
	if err := r.ensureEngine(); err != nil {
		return err
	}
	if err := r.ensureTrustEngine(); err != nil {
		return err
	}
	if err := r.warmEngine(ctx); err != nil {
		if r.engineFallback {
			return r.degradeBatch(n, stage, accurate, finish)
		}
		return fmt.Errorf("hpacml: batched inference in region %q: %w", r.name, err)
	}

	bs := r.batches[n]
	if bs == nil {
		shape, err := r.modelInputShape()
		if err != nil {
			return err
		}
		if bs, err = r.buildBatchStaging(n, shape); err != nil {
			return err
		}
		if r.batches == nil {
			r.batches = make(map[int]*batchState)
		}
		if len(r.batches) >= maxBatchStates {
			for k := range r.batches {
				delete(r.batches, k)
				break
			}
		}
		r.batches[n] = bs
	}

	var err error
	for i := 0; i < n; i++ {
		if stage != nil {
			if err := stage(i); err != nil {
				return fmt.Errorf("hpacml: batch stage %d in region %q: %w", i, r.name, err)
			}
		}
		start := time.Now()
		if bs.inSt != nil {
			for _, st := range bs.inSt[i] {
				if err = st.Gather(); err != nil {
					break
				}
			}
		} else {
			err = r.modelInputInto(bs.blocks[i])
		}
		r.stats.ToTensor += time.Since(start)
		if err != nil {
			return err
		}
	}

	start := time.Now()
	if bs.y == nil {
		outShape, oerr := r.engine.OutputShape(bs.x.Shape())
		if oerr != nil {
			r.stats.BatchInference += time.Since(start)
			if r.engineFallback {
				return r.degradeBatch(n, stage, accurate, finish)
			}
			return fmt.Errorf("hpacml: batched inference in region %q: %w", r.name, oerr)
		}
		if err := r.buildBatchOutput(bs, tensor.New(outShape...), n); err != nil {
			r.stats.BatchInference += time.Since(start)
			return err
		}
	}
	err = r.engine.Infer(ctx, bs.x, bs.y)
	r.stats.BatchInference += time.Since(start)
	if err != nil {
		bs.y, bs.outViews, bs.outSt = nil, nil, nil
		if r.engineFallback {
			return r.degradeBatch(n, stage, accurate, finish)
		}
		return fmt.Errorf("hpacml: batched inference in region %q: %w", r.name, err)
	}

	var rep *TrustReport
	if tr, ok := r.engine.(trustReporter); ok {
		rep = tr.TrustReport()
	}
	rows := inputRows(bs.x)
	per := rows / n

	r.stats.Invocations += n
	r.stats.Batches++
	kept := 0
	for i := 0; i < n; i++ {
		if rep != nil && blockUntrusted(rep, i*per, per) {
			for ri := i * per; ri < (i+1)*per && ri < rep.Rows; ri++ {
				switch {
				case rep.OOD[ri]:
					r.stats.OutOfDomainRows++
				case rep.Uncertain[ri]:
					r.stats.UncertainRows++
				}
			}
			if err := r.routeInvocationAccurate(i, stage, accurate, finish); err != nil {
				return err
			}
			continue
		}
		start := time.Now()
		if bs.outSt != nil {
			err = scatterStagers(bs.outSt[i])
		} else {
			err = r.scatterModelOutput(bs.outViews[i])
		}
		r.stats.FromTensor += time.Since(start)
		if err != nil {
			return err
		}
		if finish != nil {
			if err := finish(i); err != nil {
				return fmt.Errorf("hpacml: batch finish %d in region %q: %w", i, r.name, err)
			}
		}
		kept++
		if rep != nil {
			r.stats.TrustedRows += per
		}
	}
	r.stats.Inferences += kept
	r.stats.BatchedInvocations += kept
	if r.engineRemote {
		r.stats.RemoteInference += kept
	}
	if rep == nil {
		r.stats.TrustedRows += rows
	}
	return nil
}

// routeInvocationAccurate recomputes one batched invocation on the
// accurate path: re-stage its inputs, gather them for the capture
// record, run accurate(i), recapture, and finish.
func (r *Region) routeInvocationAccurate(i int, stage, accurate, finish func(int) error) error {
	if stage != nil {
		if err := stage(i); err != nil {
			return fmt.Errorf("hpacml: batch stage %d in region %q: %w", i, r.name, err)
		}
	}
	start := time.Now()
	inputs, err := r.modelInput()
	r.stats.ToTensor += time.Since(start)
	if err != nil {
		return err
	}
	runStart := time.Now()
	if err := accurate(i); err != nil {
		return fmt.Errorf("hpacml: batch accurate %d in region %q: %w", i, r.name, err)
	}
	runtime := time.Since(runStart)
	r.stats.Accurate += runtime
	r.stats.AccurateRuns++
	if err := r.recaptureInvocation(inputs, runtime); err != nil {
		return err
	}
	if finish != nil {
		if err := finish(i); err != nil {
			return fmt.Errorf("hpacml: batch finish %d in region %q: %w", i, r.name, err)
		}
	}
	return nil
}

// degradeBatch is the routed batch's engine-failure path: every
// invocation runs accurately, in order, so a flapping or dead backend
// costs surrogate speedup, never rows. No recapture happens here —
// these are fallbacks (the engine failed), not trust rejections (the
// model answered and was overruled).
func (r *Region) degradeBatch(n int, stage, accurate, finish func(int) error) error {
	for i := 0; i < n; i++ {
		if stage != nil {
			if err := stage(i); err != nil {
				return fmt.Errorf("hpacml: batch stage %d in region %q: %w", i, r.name, err)
			}
		}
		start := time.Now()
		if err := accurate(i); err != nil {
			return fmt.Errorf("hpacml: batch accurate %d in region %q: %w", i, r.name, err)
		}
		r.stats.Accurate += time.Since(start)
		r.stats.AccurateRuns++
		r.stats.Fallbacks++
		r.stats.Invocations++
		if finish != nil {
			if err := finish(i); err != nil {
				return fmt.Errorf("hpacml: batch finish %d in region %q: %w", i, r.name, err)
			}
		}
	}
	return nil
}
