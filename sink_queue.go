package hpacml

import (
	"sync"
	"sync/atomic"
)

// captureQueue is the bounded-queue front end shared by the built-in
// asynchronous sinks (LocalSink, RemoteSink): concurrent producers
// enqueue records under a block-or-drop backpressure policy, one
// consumer goroutine (owned by the embedding sink) drains them, and
// Flush is a FIFO barrier through the same channel. Close semantics,
// the sticky asynchronous error, and the shared counters live here so
// the two sinks cannot drift apart on lifecycle behavior.
type captureQueue struct {
	drop  bool
	queue chan sinkMsg

	// mu guards closed against concurrent Capture/Flush sends — the
	// serve.Server idiom: senders hold the read lock, close flips
	// closed under the write lock before closing the channel.
	mu     sync.RWMutex
	closed bool
	done   chan struct{}

	captured    atomic.Int64
	dropped     atomic.Int64
	flushes     atomic.Int64
	flushErrors atomic.Int64

	// errMu guards lastErr, the sticky first asynchronous failure
	// reported by the next barrier (Flush or Close).
	errMu   sync.Mutex
	lastErr error
}

// sinkMsg is one queue entry: a record to process, or (rec == nil) a
// flush barrier to acknowledge on ack. FIFO queue order is what makes
// the barrier correct: every record enqueued before the barrier is
// processed before the barrier is acknowledged.
type sinkMsg struct {
	rec *CaptureRecord
	ack chan error
}

// initQueue sets up the queue; the embedding sink starts its own
// consumer goroutine, which must close done when it exits.
func (q *captureQueue) initQueue(capacity int, drop bool) {
	q.drop = drop
	q.queue = make(chan sinkMsg, capacity)
	q.done = make(chan struct{})
}

// Capture enqueues one record under the configured backpressure
// policy: block (never lose data) or drop-and-count (never stall the
// solver).
func (q *captureQueue) Capture(rec *CaptureRecord) error {
	q.mu.RLock()
	defer q.mu.RUnlock()
	if q.closed {
		return ErrSinkClosed
	}
	if q.drop {
		select {
		case q.queue <- sinkMsg{rec: rec}:
			q.captured.Add(1)
		default:
			q.dropped.Add(1)
		}
		return nil
	}
	q.queue <- sinkMsg{rec: rec}
	q.captured.Add(1)
	return nil
}

// Flush blocks until every record captured before the call is durably
// with the backend, returning any asynchronous failure hit since the
// last barrier.
func (q *captureQueue) Flush() error {
	q.mu.RLock()
	if q.closed {
		q.mu.RUnlock()
		return q.takeErr(nil)
	}
	ack := make(chan error, 1)
	q.queue <- sinkMsg{ack: ack}
	q.mu.RUnlock()
	return <-ack
}

// shutdown closes the queue once and waits for the consumer goroutine
// to drain and exit; idempotent.
func (q *captureQueue) shutdown() error {
	q.mu.Lock()
	if q.closed {
		q.mu.Unlock()
		<-q.done
		return q.takeErr(nil)
	}
	q.closed = true
	close(q.queue)
	q.mu.Unlock()
	<-q.done
	return q.takeErr(nil)
}

// setErr records the first asynchronous failure since the last
// barrier.
func (q *captureQueue) setErr(err error) {
	q.errMu.Lock()
	if q.lastErr == nil {
		q.lastErr = err
	}
	q.errMu.Unlock()
}

// takeErr returns the sticky error (or fallback), clearing it so one
// failure is reported once, on the next barrier.
func (q *captureQueue) takeErr(fallback error) error {
	q.errMu.Lock()
	defer q.errMu.Unlock()
	if q.lastErr != nil {
		err := q.lastErr
		q.lastErr = nil
		return err
	}
	return fallback
}

// queueStats snapshots the counters the queue owns.
func (q *captureQueue) queueStats() SinkStats {
	return SinkStats{
		Captured:    q.captured.Load(),
		Dropped:     q.dropped.Load(),
		Flushes:     q.flushes.Load(),
		FlushErrors: q.flushErrors.Load(),
	}
}
