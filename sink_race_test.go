package hpacml

import (
	"path/filepath"
	"sync"
	"testing"

	"repro/internal/h5"
	"repro/internal/tensor"
)

// TestConcurrentCaptureAndFlush exercises the sink's concurrency
// contract under the race detector: many producer goroutines capturing
// into one shared LocalSink while another goroutine keeps issuing
// flush barriers. Every record must land exactly once, in a readable
// shard set, with the counters agreeing.
func TestConcurrentCaptureAndFlush(t *testing.T) {
	db := filepath.Join(t.TempDir(), "race.gh5")
	s, err := NewLocalSink(db, CaptureConfig{ShardRecords: 16, QueueCap: 8})
	if err != nil {
		t.Fatal(err)
	}
	const producers, perProducer = 4, 50

	var wg, flusherWG sync.WaitGroup
	stopFlush := make(chan struct{})
	flusherWG.Add(1)
	go func() {
		defer flusherWG.Done()
		for {
			select {
			case <-stopFlush:
				return
			default:
				if err := s.Flush(); err != nil {
					t.Errorf("flush: %v", err)
					return
				}
			}
		}
	}()
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			for i := 0; i < perProducer; i++ {
				v := float64(p*perProducer + i)
				in, _ := tensor.FromSlice([]float64{v, v}, 1, 2)
				out, _ := tensor.FromSlice([]float64{-v}, 1, 1)
				if err := s.Capture(&CaptureRecord{Region: "r", Inputs: in, Outputs: out, RuntimeNS: v}); err != nil {
					t.Errorf("capture: %v", err)
					return
				}
			}
		}(p)
	}
	// Producers finish first, then the flusher is stopped, then Close
	// drains — Capture never races Close by construction, matching the
	// sink's lifecycle contract.
	wg.Wait()
	close(stopFlush)
	flusherWG.Wait()
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	ss := s.SinkStats()
	const total = producers * perProducer
	if ss.Captured != total || ss.Dropped != 0 {
		t.Fatalf("captured %d dropped %d, want %d/0", ss.Captured, ss.Dropped, total)
	}
	if ss.Shards < 2 {
		t.Fatalf("expected shard rotation under load, got %d shard(s)", ss.Shards)
	}
	f, err := h5.OpenShards(db)
	if err != nil {
		t.Fatal(err)
	}
	if n := f.NumRecords("r", "inputs"); n != total {
		t.Fatalf("database holds %d records, want %d", n, total)
	}
	// Every record's three datasets must be present and consistent —
	// concurrent producers interleave, but sets never tear.
	x, err := f.Read("r", "inputs")
	if err != nil {
		t.Fatal(err)
	}
	rt, err := f.Read("r", "runtime_ns")
	if err != nil {
		t.Fatal(err)
	}
	if x.Dim(0) != total || rt.Dim(0) != total {
		t.Fatalf("dataset rows: inputs %d runtime %d, want %d", x.Dim(0), rt.Dim(0), total)
	}
	for i := 0; i < total; i++ {
		if x.Data()[i*2] != rt.Data()[i] {
			t.Fatalf("record %d tore: input %g vs runtime %g", i, x.Data()[i*2], rt.Data()[i])
		}
	}
}
