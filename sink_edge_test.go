package hpacml

import (
	"fmt"
	"path/filepath"
	"testing"

	"repro/internal/h5"
	"repro/internal/tensor"
)

// recordCounter is a minimal terminal sink that counts what reaches it.
type recordCounter struct{ captured int }

func (c *recordCounter) Capture(*CaptureRecord) error { c.captured++; return nil }
func (c *recordCounter) Flush() error                 { return nil }
func (c *recordCounter) Close() error                 { return nil }

// TestCaptureFracZeroIsRejected pins the clause grammar's lower bound:
// capture(frac:0) would silently collect nothing, so it must be a
// region-construction error, not a quietly empty database.
func TestCaptureFracZeroIsRejected(t *testing.T) {
	for _, frac := range []string{"0", "0.0"} {
		src := fmt.Sprintf(`ml(collect) in(x) out(y) db("d.gh5") capture(frac:%s)`, frac)
		x := make([]float64, 2)
		y := make([]float64, 1)
		_, err := NewRegion("frac0",
			Directives(`
tensor functor(vin: [i, 0:2] = ([0:2]))
tensor functor(vout: [i, 0:1] = ([0:1]))
tensor map(to: vin(x[0:1]))
tensor map(from: vout(y[0:1]))
`+src),
			BindArray("x", x, 2),
			BindArray("y", y, 1),
		)
		if err == nil {
			t.Errorf("capture(frac:%s) must be rejected at region construction", frac)
		}
	}
}

// TestDegenerateSamplingPoliciesPassThrough pins the keep-everything
// edge of both policies: capture(frac:1) and capture(every:1) mean "no
// thinning", so NewSink must not interpose a sampling wrapper at all,
// and a SamplingSink built directly with either config must forward
// every record with Sampled = 0.
func TestDegenerateSamplingPoliciesPassThrough(t *testing.T) {
	dir := t.TempDir()
	for name, cfg := range map[string]CaptureConfig{
		"frac:1":  {Frac: 1},
		"every:1": {Every: 1},
		"none":    {},
	} {
		t.Run("NewSink/"+name, func(t *testing.T) {
			s, err := NewSink(filepath.Join(dir, "db-"+name[:4]+".gh5"), cfg)
			if err != nil {
				t.Fatal(err)
			}
			defer s.Close()
			if _, wrapped := s.(*SamplingSink); wrapped {
				t.Fatalf("config %+v interposed a SamplingSink; want the bare pipeline", cfg)
			}
		})
		t.Run("SamplingSink/"+name, func(t *testing.T) {
			counter := &recordCounter{}
			ss := NewSamplingSink(counter, cfg)
			const n = 25
			for i := 0; i < n; i++ {
				in, _ := tensor.FromSlice([]float64{float64(i)}, 1, 1)
				out, _ := tensor.FromSlice([]float64{float64(-i)}, 1, 1)
				if err := ss.Capture(&CaptureRecord{Region: "g", Inputs: in, Outputs: out}); err != nil {
					t.Fatal(err)
				}
			}
			if counter.captured != n {
				t.Fatalf("pass-through config %+v kept %d of %d", cfg, counter.captured, n)
			}
			if st := ss.SinkStats(); st.Sampled != 0 {
				t.Fatalf("pass-through config %+v counted %d sampled", cfg, st.Sampled)
			}
		})
	}
}

// TestCaptureEveryOneKeepsEverything drives capture(every:1) through a
// real region: every invocation must land in the database.
func TestCaptureEveryOneKeepsEverything(t *testing.T) {
	db := filepath.Join(t.TempDir(), "all.gh5")
	const steps = 9
	r := collectStencil(t, steps, db, WithCapture(CaptureConfig{Every: 1}))
	if err := r.Close(); err != nil {
		t.Fatal(err)
	}
	ss, ok := r.CaptureStats()
	if !ok || ss.Captured != steps || ss.Sampled != 0 {
		t.Fatalf("every:1 stats = %+v (ok %v), want %d captured, 0 sampled", ss, ok, steps)
	}
	f, err := h5.OpenShards(db)
	if err != nil {
		t.Fatal(err)
	}
	if n := f.NumRecords("stencil", "inputs"); n != steps {
		t.Fatalf("database has %d records, want %d", n, steps)
	}
}
