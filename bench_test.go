// Benchmarks regenerating the paper's tables and figures (one Benchmark*
// per table/figure; see EXPERIMENTS.md for the mapping) plus the ablation
// benches for the design choices called out in DESIGN.md §6.
package hpacml_test

import (
	"fmt"
	"path/filepath"
	"runtime"
	"testing"

	hpacml "repro"

	"repro/internal/bo"
	"repro/internal/bridge"
	"repro/internal/directive"
	"repro/internal/experiments"
	"repro/internal/nn"
	"repro/internal/tensor"
)

var benchNames = []string{"minibude", "binomial", "bonds", "miniweather", "particlefilter"}

func benchOptions() experiments.Options {
	opt := experiments.QuickOptions()
	opt.CollectRuns = 4
	opt.TrainEpochs = 12
	opt.EvalRuns = 1
	return opt
}

func harnessFor(b *testing.B, name string) experiments.Harness {
	b.Helper()
	for _, h := range experiments.Registry(experiments.ScaleTest) {
		if h.Info().Name == name {
			return h
		}
	}
	b.Fatalf("unknown benchmark %q", name)
	return nil
}

// trainedModel collects data and trains one mid-space surrogate for the
// named benchmark, returning the harness and model path. Setup cost is
// excluded from the measured loop by the callers' b.ResetTimer.
func trainedModel(b *testing.B, name string) (experiments.Harness, string) {
	b.Helper()
	h := harnessFor(b, name)
	dir := b.TempDir()
	opt := benchOptions()
	dbPath := filepath.Join(dir, name+".gh5")
	if _, err := h.Collect(dbPath, opt); err != nil {
		b.Fatal(err)
	}
	space := h.ArchSpace()
	mid := make([]float64, space.Dim())
	for i := range mid {
		mid[i] = 0.5
	}
	arch, err := space.Decode(mid)
	if err != nil {
		b.Fatal(err)
	}
	hyper := map[string]bo.Value{
		"lr":    {Name: "lr", Float: 3e-3},
		"batch": {Name: "batch", Int: 64, IsInt: true},
	}
	modelPath := filepath.Join(dir, name+".gmod")
	if _, err := h.Train(dbPath, modelPath, arch, hyper, opt); err != nil {
		b.Fatal(err)
	}
	return h, modelPath
}

// BenchmarkTable1Registry measures building the benchmark registry with
// its Table I metadata (including the embedded-source LoC counts).
func BenchmarkTable1Registry(b *testing.B) {
	for i := 0; i < b.N; i++ {
		infos := experiments.Table1(experiments.ScaleTest)
		if len(infos) != 5 {
			b.Fatal("registry incomplete")
		}
	}
}

// BenchmarkTable2Directives measures the full annotation cost: parsing
// each benchmark's directives and the region semantic analysis, via the
// Figure 2 stencil region.
func BenchmarkTable2Directives(b *testing.B) {
	const N, M = 16, 16
	grid := make([]float64, N*M)
	gridNew := make([]float64, N*M)
	src := `
tensor functor(ifn: [i, j, 0:5] = (([i-1, j], [i+1, j], [i, j-1:j+2])))
tensor functor(ofn: [i, j, 0:1] = ([i, j]))
tensor map(to: ifn(t[1:N-1, 1:M-1]))
tensor map(from: ofn(tnew[1:N-1, 1:M-1]))
ml(collect) in(t) out(tnew) db("unused.gh5")
`
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r, err := hpacml.NewRegion("bench",
			hpacml.Directives(src),
			hpacml.BindInt("N", N), hpacml.BindInt("M", M),
			hpacml.BindArray("t", grid, N, M),
			hpacml.BindArray("tnew", gridNew, N, M),
		)
		if err != nil {
			b.Fatal(err)
		}
		r.Close()
	}
}

// BenchmarkTable3Collection measures one collection-mode region
// invocation per benchmark against the plain accurate run.
func BenchmarkTable3Collection(b *testing.B) {
	for _, name := range benchNames {
		b.Run(name, func(b *testing.B) {
			h := harnessFor(b, name)
			opt := benchOptions()
			opt.EvalRuns = b.N
			b.ResetTimer()
			cs, err := h.CollectOverhead(b.TempDir(), opt)
			if err != nil {
				b.Fatal(err)
			}
			b.ReportMetric(cs.OverheadX, "overhead-x")
			b.ReportMetric(cs.DataSizeMB, "db-MB")
		})
	}
}

// BenchmarkFig5Speedup regenerates the Figure 5 measurement: end-to-end
// accurate vs surrogate execution per benchmark, reporting the speedup.
func BenchmarkFig5Speedup(b *testing.B) {
	for _, name := range benchNames {
		b.Run(name, func(b *testing.B) {
			h, modelPath := trainedModel(b, name)
			opt := benchOptions()
			b.ResetTimer()
			var last experiments.EvalResult
			for i := 0; i < b.N; i++ {
				res, err := h.Evaluate(modelPath, opt)
				if err != nil {
					b.Fatal(err)
				}
				last = res
			}
			b.ReportMetric(last.Speedup, "speedup-x")
			b.ReportMetric(last.Error, "qoi-error")
		})
	}
}

// BenchmarkFig6Breakdown measures the three HPAC-ML inference phases
// (to-tensor, inference engine, from-tensor) on the binomial region.
func BenchmarkFig6Breakdown(b *testing.B) {
	h, modelPath := trainedModel(b, "binomial")
	opt := benchOptions()
	b.ResetTimer()
	var last experiments.EvalResult
	for i := 0; i < b.N; i++ {
		res, err := h.Evaluate(modelPath, opt)
		if err != nil {
			b.Fatal(err)
		}
		last = res
	}
	total := last.ToTensorSec + last.InferenceSec + last.FromTensorSec
	if total > 0 {
		b.ReportMetric(last.ToTensorSec/total, "to-tensor-frac")
		b.ReportMetric(last.InferenceSec/total, "inference-frac")
		b.ReportMetric(last.FromTensorSec/total, "from-tensor-frac")
	}
}

// BenchmarkFig7ParticleFilter regenerates the Figure 7 measurement: the
// CNN surrogate against the original algorithmic approximation.
func BenchmarkFig7ParticleFilter(b *testing.B) {
	h, modelPath := trainedModel(b, "particlefilter")
	opt := benchOptions()
	b.ResetTimer()
	var last experiments.EvalResult
	for i := 0; i < b.N; i++ {
		res, err := h.Evaluate(modelPath, opt)
		if err != nil {
			b.Fatal(err)
		}
		last = res
	}
	b.ReportMetric(last.Speedup, "speedup-x")
	b.ReportMetric(last.Error, "nn-rmse")
	b.ReportMetric(last.BaselineError, "filter-rmse")
}

// BenchmarkFig8 regenerates the Figure 8 panels: the tabular benchmarks'
// surrogate speedup/accuracy points.
func BenchmarkFig8(b *testing.B) {
	for _, panel := range []struct{ id, name string }{
		{"a", "minibude"}, {"b", "binomial"}, {"c", "bonds"},
	} {
		b.Run(panel.id+"_"+panel.name, func(b *testing.B) {
			h, modelPath := trainedModel(b, panel.name)
			opt := benchOptions()
			b.ResetTimer()
			var last experiments.EvalResult
			for i := 0; i < b.N; i++ {
				res, err := h.Evaluate(modelPath, opt)
				if err != nil {
					b.Fatal(err)
				}
				last = res
			}
			b.ReportMetric(last.Speedup, "speedup-x")
			b.ReportMetric(last.Error, "qoi-error")
		})
	}
}

// BenchmarkFig9MiniWeather regenerates the Figure 9 measurement: the
// auto-regressive surrogate rollout against the accurate solver.
func BenchmarkFig9MiniWeather(b *testing.B) {
	h, modelPath := trainedModel(b, "miniweather")
	opt := benchOptions()
	b.ResetTimer()
	var last experiments.EvalResult
	for i := 0; i < b.N; i++ {
		res, err := h.Evaluate(modelPath, opt)
		if err != nil {
			b.Fatal(err)
		}
		last = res
	}
	b.ReportMetric(last.Speedup, "speedup-x")
	b.ReportMetric(last.Error, "rollout-rmse")
}

// --- DESIGN.md §6 ablations ---

func stencilPlan(b *testing.B, n, m int) (*bridge.Plan, []float64) {
	b.Helper()
	fd, err := directive.Parse("tensor functor(s: [i, j, 0:5] = (([i-1, j], [i+1, j], [i, j-1:j+2])))")
	if err != nil {
		b.Fatal(err)
	}
	md, err := directive.Parse("tensor map(to: s(t[1:N-1, 1:M-1]))")
	if err != nil {
		b.Fatal(err)
	}
	grid := make([]float64, n*m)
	for i := range grid {
		grid[i] = float64(i)
	}
	arr, err := bridge.NewArray("t", grid, n, m)
	if err != nil {
		b.Fatal(err)
	}
	plan, err := bridge.Build(fd.(*directive.FunctorDecl), md.(*directive.MapDecl),
		map[string]*bridge.Array{"t": arr}, directive.Env{"N": n, "M": m})
	if err != nil {
		b.Fatal(err)
	}
	return plan, grid
}

// BenchmarkAblationWrapVsCopy compares the bridge's zero-copy wrapped
// gather against a naive per-element gather loop.
func BenchmarkAblationWrapVsCopy(b *testing.B) {
	const N, M = 256, 256
	plan, grid := stencilPlan(b, N, M)
	b.Run("bridge-wrapped", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := plan.Gather(); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("naive-copy", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			out := make([]float64, (N-2)*(M-2)*5)
			at := 0
			for y := 1; y < N-1; y++ {
				for x := 1; x < M-1; x++ {
					out[at] = grid[(y-1)*M+x]
					out[at+1] = grid[(y+1)*M+x]
					out[at+2] = grid[y*M+x-1]
					out[at+3] = grid[y*M+x]
					out[at+4] = grid[y*M+x+1]
					at += 5
				}
			}
		}
	})
}

// BenchmarkAblationBatchedGather compares the composed batched gather
// against applying the functor entry by entry.
func BenchmarkAblationBatchedGather(b *testing.B) {
	const N, M = 128, 128
	plan, _ := stencilPlan(b, N, M)
	b.Run("batched", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := plan.Gather(); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("per-entry", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			g, err := plan.Gather()
			if err != nil {
				b.Fatal(err)
			}
			// Per-entry traversal through the tensor API models the
			// cost of entrywise functor application.
			var sink float64
			for y := 0; y < N-2; y++ {
				for x := 0; x < M-2; x++ {
					for f := 0; f < 5; f++ {
						sink += g.At(y, x, f)
					}
				}
			}
			_ = sink
		}
	})
}

// BenchmarkAblationParallelInference compares batch inference with the
// full worker pool against GOMAXPROCS=1.
func BenchmarkAblationParallelInference(b *testing.B) {
	net := nn.NewNetwork(3)
	net.Add(net.NewDense(64, 256), nn.NewActivation(nn.ActReLU), net.NewDense(256, 8))
	x := tensor.New(2048, 64)
	for i := range x.Data() {
		x.Data()[i] = float64(i%17) * 0.1
	}
	run := func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := net.Forward(x); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.Run(fmt.Sprintf("parallel-%d", runtime.GOMAXPROCS(0)), run)
	b.Run("serial", func(b *testing.B) {
		prev := runtime.GOMAXPROCS(1)
		defer runtime.GOMAXPROCS(prev)
		run(b)
	})
}

// BenchmarkAblationModelCache compares inference with the model cache
// against reloading the model file on every region instance.
func BenchmarkAblationModelCache(b *testing.B) {
	dir := b.TempDir()
	modelPath := filepath.Join(dir, "m.gmod")
	net := nn.NewNetwork(7)
	net.Add(net.NewDense(1, 64), nn.NewActivation(nn.ActTanh), net.NewDense(64, 1))
	if err := net.Save(modelPath); err != nil {
		b.Fatal(err)
	}
	const n = 64
	buf := make([]float64, n)
	mk := func() *hpacml.Region {
		r, err := hpacml.NewRegion("cachebench",
			hpacml.Directives(fmt.Sprintf(`
tensor functor(f: [i, 0:1] = ([i]))
tensor map(to: f(x[0:N]))
tensor map(from: f(x[0:N]))
ml(infer) inout(x) model(%q)
`, modelPath)),
			hpacml.BindInt("N", n),
			hpacml.BindArray("x", buf, n),
		)
		if err != nil {
			b.Fatal(err)
		}
		return r
	}
	b.Run("cached", func(b *testing.B) {
		r := mk()
		defer r.Close()
		for i := 0; i < b.N; i++ {
			if err := r.Execute(nil); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("reload-every-instance", func(b *testing.B) {
		r := mk()
		defer r.Close()
		for i := 0; i < b.N; i++ {
			r.InvalidateModel()
			if err := r.Execute(nil); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// --- Batched inference engine ---

// naiveMatMul is the seed's single-threaded triple loop, kept as the
// ablation baseline for the blocked, parallel kernel.
func naiveMatMul(a, b *tensor.Tensor) *tensor.Tensor {
	m, k, n := a.Dim(0), a.Dim(1), b.Dim(1)
	ad, bd := a.Contiguous().Data(), b.Contiguous().Data()
	out := tensor.New(m, n)
	od := out.Data()
	for i := 0; i < m; i++ {
		arow := ad[i*k : (i+1)*k]
		orow := od[i*n : (i+1)*n]
		for kk := 0; kk < k; kk++ {
			av := arow[kk]
			if av == 0 {
				continue
			}
			brow := bd[kk*n : (kk+1)*n]
			for j := range orow {
				orow[j] += av * brow[j]
			}
		}
	}
	return out
}

// BenchmarkMatMulBlockedVsNaive measures the tensor engine's blocked,
// parallel MatMul against the seed's serial triple loop.
func BenchmarkMatMulBlockedVsNaive(b *testing.B) {
	for _, size := range []int{128, 512} {
		a := tensor.New(size, size)
		w := tensor.New(size, size)
		ad, wd := a.Data(), w.Data()
		for i := range ad {
			ad[i] = float64(i%13) * 0.37
			wd[i] = float64(i%7) * 0.11
		}
		b.Run(fmt.Sprintf("naive-%d", size), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				naiveMatMul(a, w)
			}
		})
		b.Run(fmt.Sprintf("blocked-%d", size), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := tensor.MatMul(a, w); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(fmt.Sprintf("blocked-into-%d", size), func(b *testing.B) {
			dst := tensor.New(size, size)
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if err := tensor.MatMulInto(dst, a, w); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// optionBenchRegion builds the binomial MLP inference region used by the
// batching benchmarks: chunk options of 3 features each, one surrogate
// price out, with a mid-space MLP like the paper's binomial search space.
func optionBenchRegion(b *testing.B, chunk int) (*hpacml.Region, []float64, []float64, []float64, []float64) {
	b.Helper()
	hpacml.ClearModelCache()
	dir := b.TempDir()
	modelPath := filepath.Join(dir, "options.gmod")
	net := nn.NewNetwork(13)
	net.Add(net.NewDense(3, 64), nn.NewActivation(nn.ActReLU),
		net.NewDense(64, 64), nn.NewActivation(nn.ActReLU),
		net.NewDense(64, 1))
	if err := net.Save(modelPath); err != nil {
		b.Fatal(err)
	}
	s := make([]float64, chunk)
	x := make([]float64, chunk)
	t := make([]float64, chunk)
	prices := make([]float64, chunk)
	r, err := hpacml.NewRegion("options-bench",
		hpacml.Directives(fmt.Sprintf(`
tensor functor(opt_in: [i, 0:3] = ([i]))
tensor functor(price_out: [i, 0:1] = ([i]))
tensor map(to: opt_in(S[0:NOPT], X[0:NOPT], T[0:NOPT]))
ml(infer) in(S, X, T) out(price_out(prices[0:NOPT])) model(%q)
`, modelPath)),
		hpacml.BindInt("NOPT", chunk),
		hpacml.BindArray("S", s, chunk),
		hpacml.BindArray("X", x, chunk),
		hpacml.BindArray("T", t, chunk),
		hpacml.BindArray("prices", prices, chunk),
	)
	if err != nil {
		b.Fatal(err)
	}
	return r, s, x, t, prices
}

// BenchmarkExecuteSingleVsBatch is the headline measurement of the
// batched inference engine: serving `batch` region invocations by
// sequential Execute calls versus one ExecuteBatch call. One op is one
// full sweep of `batch` invocations, so ns/op is directly comparable
// between the two paths. chunk is the options priced per invocation:
// chunk=1 is the fine-grained regime where per-invocation overhead
// dominates and batching pays off most; chunk=32 is closer to
// compute-bound, where batching approaches a wash on a single core and
// wins through parallel utilization on larger machines.
func BenchmarkExecuteSingleVsBatch(b *testing.B) {
	for _, chunk := range []int{1, 32} {
		for _, batch := range []int{4, 64} {
			stage := func(s, x, t []float64) func(i int) error {
				return func(i int) error {
					for j := range s {
						s[j] = 5 + float64((i*31+j*7)%25)
						x[j] = 1 + float64((i*13+j*3)%99)
						t[j] = 0.25 + float64((i+j)%39)*0.25
					}
					return nil
				}
			}
			b.Run(fmt.Sprintf("single-chunk%d-batch%d", chunk, batch), func(b *testing.B) {
				r, s, x, t, _ := optionBenchRegion(b, chunk)
				defer r.Close()
				st := stage(s, x, t)
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					for k := 0; k < batch; k++ {
						if err := st(k); err != nil {
							b.Fatal(err)
						}
						if err := r.Execute(nil); err != nil {
							b.Fatal(err)
						}
					}
				}
			})
			b.Run(fmt.Sprintf("batched-chunk%d-batch%d", chunk, batch), func(b *testing.B) {
				r, s, x, t, _ := optionBenchRegion(b, chunk)
				defer r.Close()
				st := stage(s, x, t)
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if err := r.ExecuteBatch(batch, st, nil); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// BenchmarkForwardBatch measures the NN-engine half of the amortization:
// many small Forward calls against one ForwardBatch call over the same
// rows.
func BenchmarkForwardBatch(b *testing.B) {
	net := nn.NewNetwork(3)
	net.Add(net.NewDense(16, 128), nn.NewActivation(nn.ActReLU), net.NewDense(128, 4))
	const parts, rows = 32, 8
	xs := make([]*tensor.Tensor, parts)
	for i := range xs {
		xs[i] = tensor.New(rows, 16)
		d := xs[i].Data()
		for j := range d {
			d[j] = float64((i*37 + j) % 19)
		}
	}
	b.Run("sequential", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			for _, x := range xs {
				if _, err := net.Forward(x); err != nil {
					b.Fatal(err)
				}
			}
		}
	})
	b.Run("batched", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := net.ForwardBatch(xs); err != nil {
				b.Fatal(err)
			}
		}
	})
}
