// Binomial Options example: the paper's Observation 3 — the trade-off
// between model size, speedup, and accuracy, explored by training several
// surrogate sizes for the same annotated region (Figure 8b's axis).
//
// Run with:
//
//	go run ./examples/binomial
package main

import (
	"fmt"
	"log"
	"math"
	"os"
	"path/filepath"
	"time"

	hpacml "repro"

	"repro/internal/benchmarks/binomial"
	"repro/internal/h5"
	"repro/internal/nn"
)

func main() {
	dir, err := os.MkdirTemp("", "hpacml-binomial-")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	dbPath := filepath.Join(dir, "binomial.gh5")

	cfg := binomial.DefaultConfig()
	cfg.NumOptions = 2048
	cfg.Steps = 128
	app, err := binomial.New(cfg)
	if err != nil {
		log.Fatal(err)
	}

	modelPath := filepath.Join(dir, "binomial.gmod")
	useModel := false
	region, err := hpacml.NewRegion("binomial",
		hpacml.Directives(binomial.Directives(modelPath, dbPath)),
		hpacml.BindInt("NOPT", cfg.NumOptions),
		hpacml.BindArray("S", app.S, cfg.NumOptions),
		hpacml.BindArray("X", app.X, cfg.NumOptions),
		hpacml.BindArray("T", app.T, cfg.NumOptions),
		hpacml.BindArray("prices", app.Prices, cfg.NumOptions),
		hpacml.BindPredicate("useModel", func() bool { return useModel }),
	)
	if err != nil {
		log.Fatal(err)
	}
	defer region.Close()

	// --- Collect pricing data over several portfolios.
	fmt.Println("collecting training data over 10 portfolios")
	for run := 0; run < 10; run++ {
		app.RandomizeOptions(int64(run))
		if err := region.Execute(func() error { app.ComputePrices(); return nil }); err != nil {
			log.Fatal(err)
		}
	}
	if err := region.Flush(); err != nil {
		log.Fatal(err)
	}
	file, err := h5.Open(dbPath)
	if err != nil {
		log.Fatal(err)
	}
	x, err := file.Read("binomial", "inputs")
	if err != nil {
		log.Fatal(err)
	}
	y, err := file.Read("binomial", "outputs")
	if err != nil {
		log.Fatal(err)
	}
	ds, err := nn.NewDataset(x, y)
	if err != nil {
		log.Fatal(err)
	}

	// --- Train a ladder of model sizes and measure the trade-off.
	app.RandomizeOptions(999) // held-out portfolio
	accStart := time.Now()
	app.ComputePrices()
	accurateTime := time.Since(accStart)
	ref := append([]float64(nil), app.Prices...)

	fmt.Printf("\naccurate lattice pricing: %v for %d options\n\n", accurateTime, cfg.NumOptions)
	fmt.Printf("%-14s %-10s %-10s %s\n", "hidden sizes", "params", "speedup", "RMSE")
	for _, hidden := range [][]int{{8}, {32}, {64, 32}, {128, 64}} {
		net := nn.NewNetwork(17)
		prev := 3
		for _, hsz := range hidden {
			net.Add(net.NewDense(prev, hsz), nn.NewActivation(nn.ActReLU))
			prev = hsz
		}
		net.Add(net.NewDense(prev, 1))
		if _, err := net.Fit(ds, nil, nn.TrainConfig{Epochs: 60, BatchSize: 128, LR: 3e-3, Seed: 5}); err != nil {
			log.Fatal(err)
		}
		if err := net.Save(modelPath); err != nil {
			log.Fatal(err)
		}
		region.InvalidateModel()

		useModel = true
		surStart := time.Now()
		if err := region.Execute(nil); err != nil {
			log.Fatal(err)
		}
		surrogateTime := time.Since(surStart)
		useModel = false

		var sum float64
		for i := range ref {
			d := app.Prices[i] - ref[i]
			sum += d * d
		}
		rmse := math.Sqrt(sum / float64(len(ref)))
		fmt.Printf("%-14v %-10d %-10.1fx %.4f\n",
			hidden, net.NumParams(), float64(accurateTime)/float64(surrogateTime), rmse)
	}
	fmt.Println("\nsmaller models run faster but price less accurately (Observation 3)")
}
