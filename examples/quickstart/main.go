// Quickstart: the paper's Figure 2 program, end to end.
//
// A 2-D Jacobi stencil is annotated with HPAC-ML directives. The program
// first runs in data-collection mode (the predicate is false), recording
// every region invocation's inputs and outputs into a .gh5 database. It
// then trains a small MLP surrogate offline from that database, saves it
// in .gmod format, flips the predicate — no other change — and the same
// region now runs model inference instead of the stencil.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"math"
	"os"
	"path/filepath"

	hpacml "repro"

	"repro/internal/h5"
	"repro/internal/nn"
)

const (
	N, M  = 32, 40
	steps = 40
)

// doTimestep is the accurate execution path: a 5-point averaging stencil
// over the grid interior.
func doTimestep(t, tnew []float64) {
	for i := 1; i < N-1; i++ {
		for j := 1; j < M-1; j++ {
			tnew[i*M+j] = (t[(i-1)*M+j] + t[(i+1)*M+j] + t[i*M+j-1] + t[i*M+j] + t[i*M+j+1]) / 5
		}
	}
}

func main() {
	dir, err := os.MkdirTemp("", "hpacml-quickstart-")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	dbPath := filepath.Join(dir, "stencil.gh5")
	modelPath := filepath.Join(dir, "stencil.gmod")

	grid := make([]float64, N*M)
	gridNew := make([]float64, N*M)
	for i := range grid {
		grid[i] = math.Sin(0.2*float64(i%M)) * math.Cos(0.11*float64(i/M))
	}

	// The annotation: the exact directives of paper Figure 2, with the
	// wrapped statement becoming the closure passed to Execute.
	useModel := false
	region, err := hpacml.NewRegion("stencil",
		hpacml.Directives(fmt.Sprintf(`
#pragma approx tensor functor(ifnctr: [i, j, 0:5] = (([i-1, j], [i+1, j], [i, j-1:j+2])))
#pragma approx tensor functor(ofnctr: [i, j, 0:1] = ([i, j]))
#pragma approx tensor map(to: ifnctr(t[1:N-1, 1:M-1]))
#pragma approx tensor map(from: ofnctr(tnew[1:N-1, 1:M-1]))
#pragma approx ml(predicated:useModel) in(t) out(tnew) db(%q) model(%q)
`, dbPath, modelPath)),
		hpacml.BindInt("N", N), hpacml.BindInt("M", M),
		hpacml.BindArray("t", grid, N, M),
		hpacml.BindArray("tnew", gridNew, N, M),
		hpacml.BindPredicate("useModel", func() bool { return useModel }),
	)
	if err != nil {
		log.Fatal(err)
	}
	defer region.Close()

	// --- Phase 1: data collection.
	fmt.Println("phase 1: collecting training data from the accurate stencil")
	for s := 0; s < steps; s++ {
		if err := region.Execute(func() error { doTimestep(grid, gridNew); return nil }); err != nil {
			log.Fatal(err)
		}
		copy(grid, gridNew)
	}
	if err := region.Flush(); err != nil {
		log.Fatal(err)
	}

	// --- Phase 2: offline training (the "ML expert" step).
	fmt.Println("phase 2: training the surrogate from", dbPath)
	f, err := h5.Open(dbPath)
	if err != nil {
		log.Fatal(err)
	}
	x, err := f.Read("stencil", "inputs")
	if err != nil {
		log.Fatal(err)
	}
	y, err := f.Read("stencil", "outputs")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  database: %d samples of %d features\n", x.Dim(0), x.Dim(1))
	ds, err := nn.NewDataset(x, y)
	if err != nil {
		log.Fatal(err)
	}
	net := nn.NewNetwork(7)
	net.Add(net.NewDense(5, 16), nn.NewActivation(nn.ActTanh), net.NewDense(16, 1))
	hist, err := net.Fit(ds, nil, nn.TrainConfig{Epochs: 60, BatchSize: 128, LR: 0.01, Seed: 3})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  best validation loss: %.3g\n", hist.BestVal)
	if err := net.Save(modelPath); err != nil {
		log.Fatal(err)
	}

	// --- Phase 3: deployment. Only the predicate changes.
	fmt.Println("phase 3: deploying the surrogate (same region, predicate flipped)")
	useModel = true
	region.ResetStats() // report inference-mode phase split only (Fig. 6)
	ref := make([]float64, N*M)
	doTimestep(grid, ref)
	if err := region.Execute(nil); err != nil {
		log.Fatal(err)
	}
	var sum float64
	var n int
	for i := 1; i < N-1; i++ {
		for j := 1; j < M-1; j++ {
			d := gridNew[i*M+j] - ref[i*M+j]
			sum += d * d
			n++
		}
	}
	st := region.Stats()
	fmt.Printf("  surrogate RMSE vs accurate stencil: %.4g\n", math.Sqrt(sum/float64(n)))
	fmt.Printf("  phase split: to-tensor %v, inference %v, from-tensor %v (bridge overhead %.2f%%)\n",
		st.ToTensor, st.Inference, st.FromTensor, st.BridgeOverhead()*100)
}
