// Uncertainty-gated execution: the trust(...) clause routes individual
// rows between the surrogate and the accurate path. A deep ensemble
// (three models, same architecture, different training seeds) reports
// per-row predictive variance, and an input-domain guardrail fitted
// from the capture envelope rejects inputs the surrogate never saw —
// together they split every batch three ways:
//
//	in-domain, members agree     -> surrogate output kept   (TrustedRows)
//	in-domain, members disagree  -> accurate + recaptured   (UncertainRows)
//	outside the fitted envelope  -> accurate + recaptured   (OutOfDomainRows)
//
// The rejected rows are recomputed by the accurate path and handed to
// the capture sink, so the inputs the surrogate handles worst are
// exactly the ones the next training round sees most.
//
//	go run ./examples/trust
//
// The program exits non-zero unless all three verdicts occur, the
// rejected invocations are recaptured into the database, and a serve
// instance hosting the same ensemble model set reports nonzero
// TrustedRows — so it doubles as an end-to-end acceptance check.
package main

import (
	"context"
	"fmt"
	"log"
	"math"
	"math/rand"
	"net/http/httptest"
	"os"
	"path/filepath"
	"time"

	hpacml "repro"

	"repro/internal/h5"
	"repro/internal/nn"
	"repro/internal/serve"
	"repro/internal/serveclient"
	"repro/internal/tensor"
)

const inDim, outDim = 3, 1

// target is the function the surrogates approximate.
func target(a, b, c float64) float64 { return math.Sin(a+b) + 0.5*c }

// trainMember fits one ensemble member on samples drawn from
// [0,1]^inDim — deliberately narrower than the guardrail envelope, so
// inputs near the envelope's edge are in-domain yet extrapolated, and
// the members disagree there.
func trainMember(path string, seed int64) error {
	const samples = 1024
	rng := rand.New(rand.NewSource(seed))
	xs := tensor.New(samples, inDim)
	ys := tensor.New(samples, outDim)
	for i := 0; i < samples; i++ {
		a, b, c := rng.Float64(), rng.Float64(), rng.Float64()
		xs.Data()[i*inDim+0] = a
		xs.Data()[i*inDim+1] = b
		xs.Data()[i*inDim+2] = c
		ys.Data()[i] = target(a, b, c)
	}
	ds, err := nn.NewDataset(xs, ys)
	if err != nil {
		return err
	}
	net := nn.NewNetwork(seed)
	net.Add(net.NewDense(inDim, 16), nn.NewActivation(nn.ActTanh), net.NewDense(16, outDim))
	if _, err := net.Fit(ds, nil, nn.TrainConfig{Epochs: 30, BatchSize: 64, LR: 0.01, Seed: seed}); err != nil {
		return err
	}
	return net.Save(path)
}

// probeVariance measures the ensemble's per-row predictive variance on
// a probe batch and returns the row variances.
func probeVariance(ctx context.Context, members []string, rows [][]float64) ([]float64, error) {
	eng, err := hpacml.NewLocalEnsemble(members...)
	if err != nil {
		return nil, err
	}
	defer eng.Close()
	in := tensor.New(len(rows), inDim)
	for i, row := range rows {
		copy(in.Data()[i*inDim:(i+1)*inDim], row)
	}
	if err := eng.Warmup(ctx, []int{1, inDim}); err != nil {
		return nil, err
	}
	outShape, err := eng.OutputShape(in.Shape())
	if err != nil {
		return nil, err
	}
	out := tensor.New(outShape...)
	if err := eng.Infer(ctx, in, out); err != nil {
		return nil, err
	}
	return append([]float64(nil), eng.RowVariance()...), nil
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("trust: ")
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()

	dir, err := os.MkdirTemp("", "hpacml-trust-")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	fmt.Println("phase 0: training a 3-member deep ensemble (same architecture, different seeds)")
	members := make([]string, 3)
	for i := range members {
		members[i] = filepath.Join(dir, fmt.Sprintf("m%d.gmod", i))
		if err := trainMember(members[i], int64(11+7*i)); err != nil {
			log.Fatal(err)
		}
	}

	// The guardrail envelope spans [0,2] per feature — wider than the
	// [0,1] training range, as a capture set gathered across a broader
	// campaign would be. Inputs in (1,2] are in-domain but extrapolated;
	// inputs beyond 2 are out-of-domain.
	fmt.Println("phase 1: fitting the input-domain guardrail (envelope [0,2] per feature)")
	const envelope = 2.0
	capRNG := rand.New(rand.NewSource(5))
	capX := tensor.New(512, inDim)
	for i := 0; i < capX.Len(); i++ {
		capX.Data()[i] = capRNG.Float64() * envelope
	}
	guard, err := hpacml.FitGuardrail(capX, 0)
	if err != nil {
		log.Fatal(err)
	}
	guard.Margin = 0.01
	guardPath := hpacml.GuardrailPath(members[0])
	if err := guard.Save(guardPath); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  sidecar %s: feature 0 bounds [%.3f, %.3f]\n", filepath.Base(guardPath), guard.Lo[0], guard.Hi[0])

	// Pick the variance threshold between what the ensemble measures on
	// trained inputs and what it measures on in-domain extrapolation, so
	// the demo's gate splits deterministically.
	fmt.Println("phase 2: probing predictive variance to place the trust threshold")
	inRow := []float64{0.5, 0.5, 0.5}
	farRow := []float64{1.9, 1.9, 1.9} // inside the envelope, outside the training range
	vars, err := probeVariance(ctx, members, [][]float64{inRow, farRow})
	if err != nil {
		log.Fatal(err)
	}
	vLow, vHigh := vars[0], vars[1]
	fmt.Printf("  variance: trained input %.3g, extrapolated input %.3g\n", vLow, vHigh)
	if !(vLow < vHigh) {
		log.Fatalf("ensemble members do not disagree on extrapolated inputs (%.3g >= %.3g)", vLow, vHigh)
	}
	thr := math.Sqrt(vLow * vHigh) // geometric mean: between the two regimes
	if vLow == 0 {
		thr = vHigh / 10
	}
	fmt.Printf("  trust threshold var:%.3g\n", thr)

	fmt.Println("phase 3: trust-routed region — per-row guardrail + variance gate, recapture on rejection")
	dbPath := filepath.Join(dir, "recaptured.gh5")
	x := make([]float64, inDim)
	y := make([]float64, outDim)
	engine, err := hpacml.NewLocalEnsemble(members...)
	if err != nil {
		log.Fatal(err)
	}
	region, err := hpacml.NewRegion("trust-demo",
		hpacml.Directives(fmt.Sprintf(`
tensor functor(vin: [i, 0:FIN] = ([0:FIN]))
tensor functor(vout: [i, 0:FOUT] = ([0:FOUT]))
tensor map(to: vin(x[0:1]))
tensor map(from: vout(y[0:1]))
ml(infer) in(x) out(y) model(%q) db(%q) trust(var:%g, domain:on)
`, members[0], dbPath, thr)),
		hpacml.BindInt("FIN", inDim),
		hpacml.BindInt("FOUT", outDim),
		hpacml.BindArray("x", x, inDim),
		hpacml.BindArray("y", y, outDim),
		hpacml.WithEngine(engine),
	)
	if err != nil {
		log.Fatal(err)
	}
	defer engine.Close()
	defer region.Close()

	// One input per invocation: 8 trusted, 3 uncertain (in-domain
	// extrapolation), 3 out-of-domain.
	var inputs [][]float64
	inRNG := rand.New(rand.NewSource(23))
	for i := 0; i < 8; i++ {
		inputs = append(inputs, []float64{inRNG.Float64(), inRNG.Float64(), inRNG.Float64()})
	}
	for i := 0; i < 3; i++ {
		inputs = append(inputs, []float64{1.85 + 0.05*float64(i), 1.9, 1.9})
	}
	for i := 0; i < 3; i++ {
		inputs = append(inputs, []float64{5 + float64(i), 0.5, 0.5})
	}

	accurateRan := 0
	stage := func(i int) error { copy(x, inputs[i]); return nil }
	accurate := func(i int) error {
		accurateRan++
		y[0] = target(x[0], x[1], x[2])
		return nil
	}

	// Per-invocation routing, first through single Execute calls...
	for i := range inputs {
		stage(i)
		if err := region.Execute(func() error { return accurate(i) }); err != nil {
			log.Fatalf("invocation %d: %v", i, err)
		}
	}
	single := region.Stats()
	fmt.Printf("  Execute: trusted=%d uncertain=%d out_of_domain=%d accurate_runs=%d recaptured=%d\n",
		single.TrustedRows, single.UncertainRows, single.OutOfDomainRows, single.AccurateRuns, single.Collections)

	// ...then through one routed batch over the same inputs.
	if err := region.ExecuteBatchRouted(ctx, len(inputs), stage, accurate, nil); err != nil {
		log.Fatal(err)
	}
	st := region.Stats()
	fmt.Printf("  +ExecuteBatchRouted: trusted=%d uncertain=%d out_of_domain=%d accurate_runs=%d recaptured=%d\n",
		st.TrustedRows, st.UncertainRows, st.OutOfDomainRows, st.AccurateRuns, st.Collections)

	if st.TrustedRows == 0 || st.UncertainRows == 0 || st.OutOfDomainRows == 0 {
		log.Fatalf("expected all three trust verdicts, got trusted=%d uncertain=%d out_of_domain=%d",
			st.TrustedRows, st.UncertainRows, st.OutOfDomainRows)
	}
	routed := st.UncertainRows + st.OutOfDomainRows
	if st.AccurateRuns != routed || accurateRan != routed {
		log.Fatalf("every rejected row must run accurately: routed=%d accurate_runs=%d closure_runs=%d",
			routed, st.AccurateRuns, accurateRan)
	}
	if st.Collections != routed {
		log.Fatalf("every rejected row must be recaptured: routed=%d collections=%d", routed, st.Collections)
	}
	if err := region.Close(); err != nil {
		log.Fatal(err)
	}
	shards, err := h5.OpenShards(dbPath)
	if err != nil {
		log.Fatal(err)
	}
	recap, err := shards.Read("trust-demo", "inputs")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  recapture database holds %d rows of accurate-path samples\n", recap.Dim(0))
	if recap.Dim(0) != routed {
		log.Fatalf("recapture database holds %d rows, want %d", recap.Dim(0), routed)
	}

	fmt.Println("phase 4: serving the same ensemble model set (mean prediction, trusted-row accounting)")
	srv, err := serve.NewServer(serve.Config{MaxBatch: 16, Workers: 2},
		serve.ModelSpec{Name: "toy", Path: members[0], Ensemble: members[1:]})
	if err != nil {
		log.Fatal(err)
	}
	defer srv.Close()
	ts := httptest.NewServer(serve.NewHandler(srv))
	defer ts.Close()
	client := serveclient.New(ts.URL)
	info, err := client.Model(ctx, "toy")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  serving %q: %d-member ensemble, %d -> %d features\n", info.Name, info.Ensemble, info.InDim, info.OutDim)
	if info.Ensemble != len(members) {
		log.Fatalf("registry reports %d ensemble members, want %d", info.Ensemble, len(members))
	}
	for i := 0; i < 8; i++ {
		if _, err := client.Infer(ctx, "toy", inRow); err != nil {
			log.Fatal(err)
		}
	}
	snap, err := client.ModelStats(ctx, "toy")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  served %d requests, region TrustedRows=%d\n", snap.Completed, snap.Region.TrustedRows)
	if snap.Region.TrustedRows == 0 {
		log.Fatal("served traffic must count trusted rows")
	}
	fmt.Println("trust routing verified: guardrail, variance gate, accurate re-execution, recapture, serving")
}
