// ParticleFilter example: the paper's Observation 1 — an ML surrogate can
// beat a custom algorithmic approximation in both execution time and
// accuracy.
//
// The Rodinia particle filter estimates a moving object's location in a
// noisy synthetic video — itself an approximation with RMSE around half a
// pixel. A small CNN trained on raw frames through the HPAC-ML data
// bridge replaces all three filter kernels with one inference call.
//
// Run with:
//
//	go run ./examples/particlefilter
package main

import (
	"fmt"
	"log"
	"math"
	"os"
	"path/filepath"
	"time"

	hpacml "repro"

	"repro/internal/benchmarks/particlefilter"
	"repro/internal/h5"
	"repro/internal/nn"
)

func main() {
	dir, err := os.MkdirTemp("", "hpacml-pf-")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	dbPath := filepath.Join(dir, "pf.gh5")
	modelPath := filepath.Join(dir, "pf.gmod")

	cfg := particlefilter.DefaultConfig()
	cfg.NumFrames = 24
	pf, err := particlefilter.New(cfg)
	if err != nil {
		log.Fatal(err)
	}
	fs := cfg.FrameSize
	frameBuf := make([]float64, fs*fs)
	est := make([]float64, 2)

	useModel := false
	region, err := hpacml.NewRegion("particlefilter",
		hpacml.Directives(particlefilter.Directives(modelPath, dbPath)),
		hpacml.BindInt("FS", fs),
		hpacml.BindArray("frame", frameBuf, fs, fs),
		hpacml.BindArray("est", est, 1, 2),
		hpacml.BindPredicate("useModel", func() bool { return useModel }),
		hpacml.InputLayout(hpacml.LayoutImage2D),
	)
	if err != nil {
		log.Fatal(err)
	}
	defer region.Close()

	// --- Collect: run the accurate filter over several videos, capturing
	// ground truth as the training target.
	fmt.Println("collecting frames from 8 synthetic videos")
	for v := 0; v < 8; v++ {
		pf.SynthesizeVideo(int64(100 + v))
		pf.ResetFilter()
		for f := 0; f < cfg.NumFrames; f++ {
			frame := f
			copy(frameBuf, pf.Frame(frame))
			if err := region.Execute(func() error {
				pf.EstX[frame], pf.EstY[frame] = pf.RunFilterFrame(frame)
				est[0], est[1] = pf.TruthX[frame], pf.TruthY[frame]
				return nil
			}); err != nil {
				log.Fatal(err)
			}
		}
	}
	if err := region.Flush(); err != nil {
		log.Fatal(err)
	}

	// --- Train the CNN.
	fmt.Println("training the CNN surrogate")
	file, err := h5.Open(dbPath)
	if err != nil {
		log.Fatal(err)
	}
	x, err := file.Read("particlefilter", "inputs")
	if err != nil {
		log.Fatal(err)
	}
	y, err := file.Read("particlefilter", "outputs")
	if err != nil {
		log.Fatal(err)
	}
	ds, err := nn.NewDataset(x, y)
	if err != nil {
		log.Fatal(err)
	}
	net := nn.NewNetwork(5)
	net.Add(
		nn.NewAffine(1.0/255, -0.5), // pixel normalization baked into the model
		net.NewConv2D(1, 4, 4, 4, 2), nn.NewActivation(nn.ActReLU),
		nn.NewMaxPool2D(2), nn.NewFlatten(),
	)
	shape, err := net.OutShape([]int{1, fs, fs})
	if err != nil {
		log.Fatal(err)
	}
	net.Add(net.NewDense(shape[0], 24), nn.NewActivation(nn.ActReLU), net.NewDense(24, 2))
	hist, err := net.Fit(ds, nil, nn.TrainConfig{Epochs: 80, BatchSize: 32, LR: 3e-3, Seed: 11})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  best validation loss: %.4g (%d params)\n", hist.BestVal, net.NumParams())
	if err := net.Save(modelPath); err != nil {
		log.Fatal(err)
	}

	// --- Compare on a held-out video: the original approximation vs the
	// surrogate.
	pf.SynthesizeVideo(999)
	start := time.Now()
	pf.RunFilter()
	filterTime := time.Since(start)
	filterRMSE := pf.TrackRMSE()

	useModel = true
	start = time.Now()
	for f := 0; f < cfg.NumFrames; f++ {
		copy(frameBuf, pf.Frame(f))
		if err := region.Execute(nil); err != nil {
			log.Fatal(err)
		}
		pf.EstX[f], pf.EstY[f] = est[0], est[1]
	}
	surrogateTime := time.Since(start)
	surrogateRMSE := pf.TrackRMSE()

	fmt.Printf("\noriginal particle filter: %8v, RMSE %.3f px\n", filterTime, filterRMSE)
	fmt.Printf("CNN surrogate:            %8v, RMSE %.3f px\n", surrogateTime, surrogateRMSE)
	fmt.Printf("speedup %.1fx", float64(filterTime)/float64(surrogateTime))
	if surrogateRMSE < filterRMSE {
		fmt.Printf(" and more accurate (Observation 1)")
	}
	fmt.Println()
	if math.IsNaN(surrogateRMSE) {
		os.Exit(1)
	}
}
