// MiniWeather example: the paper's Observation 4 — in iterative,
// auto-regressive settings the surrogate's error compounds across steps,
// and HPAC-ML's if clause lets the application interleave accurate solver
// steps with surrogate steps to hold the error down.
//
// Run with:
//
//	go run ./examples/miniweather
package main

import (
	"fmt"
	"log"
	"math"
	"os"
	"path/filepath"

	hpacml "repro"

	"repro/internal/benchmarks/miniweather"
	"repro/internal/h5"
	"repro/internal/nn"
)

func main() {
	dir, err := os.MkdirTemp("", "hpacml-mw-")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	dbPath := filepath.Join(dir, "mw.gh5")
	modelPath := filepath.Join(dir, "mw.gmod")

	cfg := miniweather.Config{NX: 32, NZ: 16, XLen: 2e4, ZLen: 1e4, CFL: 0.9}
	sim, err := miniweather.New(cfg)
	if err != nil {
		log.Fatal(err)
	}
	nv, nzh, nxh := sim.StateDims()

	gate, useModel := true, false
	region, err := hpacml.NewRegion("miniweather",
		hpacml.Directives(miniweather.Directives(modelPath, dbPath)),
		hpacml.BindInt("NV", nv), hpacml.BindInt("NZH", nzh), hpacml.BindInt("NXH", nxh),
		hpacml.BindArray("state", sim.State, nv, nzh, nxh),
		hpacml.BindPredicate("useModel", func() bool { return useModel }),
		hpacml.BindPredicate("gate", func() bool { return gate }),
		hpacml.InputLayout(hpacml.LayoutChannels),
		hpacml.OutputLayout(hpacml.LayoutChannels),
	)
	if err != nil {
		log.Fatal(err)
	}
	defer region.Close()

	// --- Collect (state_t -> state_t+1) pairs from the rising bubble.
	fmt.Println("collecting 80 solver steps of training data")
	for s := 0; s < 80; s++ {
		if err := region.Execute(func() error { sim.Step(); return nil }); err != nil {
			log.Fatal(err)
		}
	}
	if err := region.Flush(); err != nil {
		log.Fatal(err)
	}

	// --- Train a residual CNN surrogate for the timestep operator.
	fmt.Println("training the residual CNN surrogate")
	file, err := h5.Open(dbPath)
	if err != nil {
		log.Fatal(err)
	}
	x, err := file.Read("miniweather", "inputs")
	if err != nil {
		log.Fatal(err)
	}
	y, err := file.Read("miniweather", "outputs")
	if err != nil {
		log.Fatal(err)
	}
	ds, err := nn.NewDataset(x, y)
	if err != nil {
		log.Fatal(err)
	}
	// Normalized-delta training: standardize input channels, predict the
	// per-step delta on a normalized scale, rescale, and add to the input
	// (residual). The loss weights channels by inverse delta variance so
	// the tiny density channel — which drives the gravity source term in
	// auto-regressive deployment — carries equal gradient weight.
	nc := miniweather.NumVars
	per := y.Dim(1) / nc
	xd, yd := x.Contiguous().Data(), y.Contiguous().Data()
	inMean := make([]float64, nc)
	inStd := make([]float64, nc)
	deltaStd := make([]float64, nc)
	for c := 0; c < nc; c++ {
		var sum, sum2, dsum, dsum2 float64
		n := 0
		for row := 0; row < y.Dim(0); row++ {
			base := row*y.Dim(1) + c*per
			for i := 0; i < per; i++ {
				v := xd[base+i]
				d := yd[base+i] - v
				sum += v
				sum2 += v * v
				dsum += d
				dsum2 += d * d
				n++
			}
		}
		inMean[c] = sum / float64(n)
		inStd[c] = math.Sqrt(math.Max(1e-12, sum2/float64(n)-inMean[c]*inMean[c]))
		dm := dsum / float64(n)
		deltaStd[c] = math.Sqrt(math.Max(1e-12, dsum2/float64(n)-dm*dm))
	}
	inScale := make([]float64, nc)
	inShift := make([]float64, nc)
	for c := 0; c < nc; c++ {
		inScale[c] = 1 / inStd[c]
		inShift[c] = -inMean[c] / inStd[c]
	}

	body := nn.NewNetwork(3)
	body.Add(nn.NewChannelAffine(per, inScale, inShift))
	body.Add(body.NewConv2D(nc, 6, 3, 3, 1), nn.NewActivation(nn.ActTanh), nn.NewFlatten())
	shape, err := body.OutShape([]int{nc, cfg.NZ, cfg.NX})
	if err != nil {
		log.Fatal(err)
	}
	body.Add(body.NewDense(shape[0], nc*cfg.NZ*cfg.NX))
	body.Add(nn.NewChannelAffine(per, deltaStd, nil))
	net := nn.NewNetwork(4)
	net.Add(nn.NewResidual(body))
	hist, err := net.Fit(ds, nil, nn.TrainConfig{
		Epochs: 60, BatchSize: 16, LR: 2e-3, Seed: 9,
		Loss: nn.WeightedMSE{Weights: nn.InverseVarianceWeights(deltaStd, per, 1e-9)},
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  best validation loss: %.4g\n", hist.BestVal)
	if err := net.Save(modelPath); err != nil {
		log.Fatal(err)
	}

	// --- Interleaving study: accurate reference vs Original:Surrogate
	// schedules over a 12-step window.
	const window = 12
	start := sim.Interior(nil)
	refs := make([][]float64, window+1)
	refs[0] = start
	for s := 1; s <= window; s++ {
		sim.Step()
		refs[s] = sim.Interior(nil)
	}

	useModel = true
	fmt.Printf("\n%-18s %s\n", "Original:Surrogate", "final-step RMSE")
	for _, ratio := range [][2]int{{0, 1}, {1, 1}, {2, 1}, {3, 3}} {
		sim.SetInterior(start)
		phase := 0
		for s := 1; s <= window; s++ {
			if ratio[0] == 0 {
				gate = true
			} else {
				cycle := ratio[0] + ratio[1]
				gate = phase%cycle >= ratio[0]
			}
			phase++
			if err := region.Execute(func() error { sim.Step(); return nil }); err != nil {
				log.Fatal(err)
			}
		}
		rmse := stateRMSE(sim.Interior(nil), refs[window])
		fmt.Printf("%-18s %.4g\n", fmt.Sprintf("%d:%d", ratio[0], ratio[1]), rmse)
	}
	fmt.Println("\ninterleaving accurate steps pulls the auto-regressive error back down (Observation 4)")
}

func stateRMSE(a, b []float64) float64 {
	var s float64
	for i := range a {
		d := a[i] - b[i]
		s += d * d
	}
	return math.Sqrt(s / float64(len(a)))
}
