// Capture pipeline: the annotation stays fixed while the runtime
// decides where collected training data lands. A collection-mode
// Region whose db() clause names a file writes through the
// asynchronous sharded LocalSink (the solver pays an enqueue, a writer
// goroutine pays the I/O); a db() clause carrying an http(s):// URI
// ships capture batches to a hpacml-serve ingest endpoint instead, so
// many distributed ranks feed one server-owned training database.
//
// Self-contained demo (starts an in-process ingest server):
//
//	go run ./examples/capture
//
// Three legs, each an acceptance check (the program exits non-zero
// unless all hold):
//
//  1. Local async sharded collection: records land across rotated
//     shard files and merge-read back in order, none lost.
//  2. Remote ingest: the same region annotation, db() swapped for a
//     URI, lands the records in the server's sharded database.
//  3. Graceful degradation: the ingest server dies mid-run; under the
//     drop policy the solve keeps running, lost records are counted —
//     never silently — and both databases stay readable (no shard
//     corruption on either side).
package main

import (
	"fmt"
	"log"
	"net/http/httptest"
	"os"
	"path/filepath"

	hpacml "repro"

	"repro/internal/h5"
	"repro/internal/serve"
)

// stencilRegion builds the Figure 2 Jacobi region in collection mode
// around a small grid, with the given db reference and capture tuning.
func stencilRegion(grid, gridNew []float64, n, m int, db string, cfg hpacml.CaptureConfig) (*hpacml.Region, error) {
	return hpacml.NewRegion("stencil",
		hpacml.Directives(fmt.Sprintf(`
tensor functor(ifn: [i, j, 0:5] = (([i-1, j], [i+1, j], [i, j-1:j+2])))
tensor functor(ofn: [i, j, 0:1] = ([i, j]))
tensor map(to: ifn(t[1:N-1, 1:M-1]))
tensor map(from: ofn(tnew[1:N-1, 1:M-1]))
ml(collect) in(t) out(tnew) db(%q)
`, db)),
		hpacml.BindInt("N", n), hpacml.BindInt("M", m),
		hpacml.BindArray("t", grid, n, m),
		hpacml.BindArray("tnew", gridNew, n, m),
		hpacml.WithCapture(cfg),
	)
}

func jacobiStep(t, tnew []float64, n, m int) {
	for i := 1; i < n-1; i++ {
		for j := 1; j < m-1; j++ {
			tnew[i*m+j] = (t[(i-1)*m+j] + t[(i+1)*m+j] + t[i*m+j-1] + t[i*m+j] + t[i*m+j+1]) / 5
		}
	}
}

// collect runs `steps` collection invocations through region.
func collect(region *hpacml.Region, grid, gridNew []float64, n, m, steps int) error {
	for s := 0; s < steps; s++ {
		if err := region.Execute(func() error { jacobiStep(grid, gridNew, n, m); return nil }); err != nil {
			return fmt.Errorf("collect step %d: %w", s, err)
		}
		copy(grid, gridNew)
	}
	return nil
}

func main() {
	if err := run(); err != nil {
		log.SetFlags(0)
		log.Fatal("examples/capture: FAIL: ", err)
	}
	fmt.Println("examples/capture: OK (async shards, remote ingest, graceful degradation)")
}

func run() error {
	const n, m, steps = 10, 12, 14
	dir, err := os.MkdirTemp("", "hpacml-capture")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)
	grid := make([]float64, n*m)
	gridNew := make([]float64, n*m)
	for i := range grid {
		grid[i] = float64(i%5) * 0.2
	}

	// --- Leg 1: local async sharded collection.
	localDB := filepath.Join(dir, "local.gh5")
	region, err := stencilRegion(grid, gridNew, n, m, localDB,
		hpacml.CaptureConfig{ShardRecords: 4})
	if err != nil {
		return err
	}
	if err := collect(region, grid, gridNew, n, m, steps); err != nil {
		return err
	}
	if err := region.Close(); err != nil {
		return err
	}
	ss, _ := region.CaptureStats()
	if ss.Captured != steps || ss.Dropped != 0 || ss.Shards < 3 {
		return fmt.Errorf("local leg: unexpected capture stats %+v", ss)
	}
	f, err := h5.OpenShards(localDB)
	if err != nil {
		return fmt.Errorf("local leg: sharded database unreadable: %w", err)
	}
	if got := f.NumRecords("stencil", "inputs"); got != steps {
		return fmt.Errorf("local leg: %d records in shards, want %d", got, steps)
	}
	fmt.Printf("local: %d records across %d shards, 0 dropped\n", ss.Captured, ss.Shards)

	// --- Leg 2: remote ingest into a server-owned database.
	ingestDB := filepath.Join(dir, "ingest.gh5")
	srv, err := serve.NewServer(serve.Config{
		CaptureDBs: []serve.CaptureSpec{{Name: "stencil", Path: ingestDB, ShardRecords: 5}},
	})
	if err != nil {
		return err
	}
	httpSrv := httptest.NewServer(serve.NewHandler(srv))

	// Small batches so traffic flows while the server lives; drop
	// policy so leg 3's dead server cannot stall the solve.
	remote, err := stencilRegion(grid, gridNew, n, m, httpSrv.URL+"/stencil",
		hpacml.CaptureConfig{BatchRecords: 2, DropWhenFull: true})
	if err != nil {
		return err
	}
	if err := collect(remote, grid, gridNew, n, m, steps); err != nil {
		return err
	}
	if err := remote.Flush(); err != nil {
		return fmt.Errorf("remote leg: flush with live server: %w", err)
	}
	snaps := srv.CaptureSnapshot()
	if len(snaps) != 1 || snaps[0].Records != steps {
		return fmt.Errorf("remote leg: server ingested %+v, want %d records", snaps, steps)
	}
	fmt.Printf("remote: %d records ingested into %d server-side shard(s)\n",
		snaps[0].Records, snaps[0].Shards)

	// --- Leg 3: the server dies mid-run; collection must degrade
	// gracefully (drop-and-count), never fail the solve or corrupt data.
	httpSrv.CloseClientConnections()
	httpSrv.Close()
	if err := srv.Close(); err != nil {
		return fmt.Errorf("server close: %w", err)
	}
	const afterDeath = 5
	if err := collect(remote, grid, gridNew, n, m, afterDeath); err != nil {
		return fmt.Errorf("leg 3: solve failed after server death (must degrade, not fail): %w", err)
	}
	if err := remote.Flush(); err == nil {
		return fmt.Errorf("leg 3: flush barrier swallowed the ingest failure")
	}
	remote.Close() // a second failure report here is fine; losing it is not
	rs, _ := remote.CaptureStats()
	if rs.RemoteRecords != steps {
		return fmt.Errorf("leg 3: acknowledged records changed after death: %d, want %d", rs.RemoteRecords, steps)
	}
	if rs.Dropped != afterDeath || rs.FlushErrors == 0 {
		return fmt.Errorf("leg 3: dead-server records not accounted as drops: %+v", rs)
	}
	// Neither database was corrupted by the mid-run death.
	fIngest, err := h5.OpenShards(ingestDB)
	if err != nil {
		return fmt.Errorf("leg 3: ingest database corrupted: %w", err)
	}
	if got := fIngest.NumRecords("stencil", "inputs"); got != steps {
		return fmt.Errorf("leg 3: ingest database holds %d records, want %d", got, steps)
	}
	fmt.Printf("degraded: server died mid-run; %d records dropped and counted, databases intact\n", rs.Dropped)
	return nil
}
