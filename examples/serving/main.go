// Serving: the concurrent-caller deployment mode. A small surrogate is
// trained offline for a synthetic pricing function, then hosted by the
// micro-batching server (internal/serve); 32 concurrent clients each
// submit single invocations over the HTTP JSON API and the coalescer
// turns them into batched Region executions. The printed stats show the
// batch-size histogram (batches > 1 forming from independent callers),
// latency quantiles, and a checksum-based hot reload swapping in
// retrained weights without dropping traffic.
//
// Run with:
//
//	go run ./examples/serving
package main

import (
	"context"
	"fmt"
	"log"
	"math"
	"math/rand"
	"net/http/httptest"
	"os"
	"path/filepath"
	"sync"
	"time"

	"repro/internal/nn"
	"repro/internal/serve"
	"repro/internal/serveclient"
	"repro/internal/tensor"
)

const (
	inDim   = 3
	outDim  = 1
	samples = 2048
)

// truth is the function the surrogate learns: a smooth pseudo-pricing
// surface over three normalized parameters.
func truth(s, x, t float64) float64 {
	return math.Max(s-x, 0) + 0.3*x*math.Exp(-t)*math.Sin(2*s+t)
}

// train fits an MLP to the truth function and saves it as a .gmod.
func train(path string, seed int64, epochs int) error {
	rng := rand.New(rand.NewSource(seed))
	xs := tensor.New(samples, inDim)
	ys := tensor.New(samples, outDim)
	for i := 0; i < samples; i++ {
		s, x, t := rng.Float64(), rng.Float64(), rng.Float64()
		xs.Data()[i*inDim+0] = s
		xs.Data()[i*inDim+1] = x
		xs.Data()[i*inDim+2] = t
		ys.Data()[i] = truth(s, x, t)
	}
	ds, err := nn.NewDataset(xs, ys)
	if err != nil {
		return err
	}
	net := nn.NewNetwork(seed)
	net.Add(net.NewDense(inDim, 24), nn.NewActivation(nn.ActTanh), net.NewDense(24, outDim))
	if _, err := net.Fit(ds, nil, nn.TrainConfig{Epochs: epochs, BatchSize: 64, LR: 0.01, Seed: seed}); err != nil {
		return err
	}
	return net.Save(path)
}

func main() {
	dir, err := os.MkdirTemp("", "hpacml-serving-")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	modelPath := filepath.Join(dir, "pricer.gmod")

	fmt.Println("phase 1: training the surrogate offline")
	if err := train(modelPath, 7, 40); err != nil {
		log.Fatal(err)
	}

	fmt.Println("phase 2: serving it behind the micro-batching coalescer")
	srv, err := serve.NewServer(serve.Config{
		MaxBatch: 16,
		MaxDelay: 2 * time.Millisecond,
		Workers:  2,
	}, serve.ModelSpec{Name: "pricer", Path: modelPath})
	if err != nil {
		log.Fatal(err)
	}
	defer srv.Close()
	ts := httptest.NewServer(serve.NewHandler(srv))
	defer ts.Close()

	// Each client goes through the typed serve client (the same one the
	// runtime's remote engine and the load generator use), so nobody
	// hand-rolls request marshalling.
	api := serveclient.New(ts.URL)
	const clients, perClient = 32, 25
	var wg sync.WaitGroup
	var mu sync.Mutex
	var worst float64
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(1000 + c)))
			for j := 0; j < perClient; j++ {
				in := []float64{rng.Float64(), rng.Float64(), rng.Float64()}
				out, err := api.Infer(context.Background(), "pricer", in)
				if err != nil {
					log.Fatal(err)
				}
				err2 := math.Abs(out[0] - truth(in[0], in[1], in[2]))
				mu.Lock()
				if err2 > worst {
					worst = err2
				}
				mu.Unlock()
			}
		}(c)
	}
	wg.Wait()

	snap := srv.Snapshot()[0]
	fmt.Printf("  served %d requests from %d concurrent clients in %d batches (mean batch %.1f)\n",
		snap.Completed, clients, snap.Batches, snap.MeanBatch)
	fmt.Printf("  batch-size histogram: %v\n", snap.BatchHist)
	fmt.Printf("  latency p50/p95/p99: %.2f / %.2f / %.2f ms\n",
		snap.LatencyP50Ms, snap.LatencyP95Ms, snap.LatencyP99Ms)
	fmt.Printf("  worst surrogate error vs truth: %.3g\n", worst)

	fmt.Println("phase 3: retraining in place; the checksum poll hot-swaps the weights")
	if err := train(modelPath, 8, 120); err != nil {
		log.Fatal(err)
	}
	if err := srv.CheckReload(); err != nil {
		log.Fatal(err)
	}
	in := []float64{0.4, 0.5, 0.6}
	out, err := srv.Infer("pricer", in)
	if err != nil {
		log.Fatal(err)
	}
	snap = srv.Snapshot()[0]
	fmt.Printf("  generation %d after reload; pricer(%v) = %.4f (truth %.4f)\n",
		snap.Generation, in, out[0], truth(in[0], in[1], in[2]))
}
