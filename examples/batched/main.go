// Batched inference: pricing an option portfolio through ExecuteBatch.
//
// A binomial-options region (three varying parameters in, one price out)
// is first trained from collected data, then deployed two ways over the
// same stream of portfolio chunks: once with a sequential Execute call
// per chunk, and once with a single ExecuteBatch call that gathers every
// chunk into one staging tensor and runs the surrogate once. The program
// verifies the two paths produce bit-identical prices and reports the
// per-phase timing split from the region's Stats.
//
// Run with:
//
//	go run ./examples/batched
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"
	"time"

	hpacml "repro"

	"repro/internal/benchmarks/binomial"
	"repro/internal/h5"
	"repro/internal/nn"
)

const (
	chunk   = 1   // options per region invocation (fine-grained regime)
	nChunks = 128 // invocations per deployment sweep
	steps   = 64  // lattice depth of the accurate path
)

func main() {
	dir, err := os.MkdirTemp("", "hpacml-batched-")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	dbPath := filepath.Join(dir, "options.gh5")
	modelPath := filepath.Join(dir, "options.gmod")

	s := make([]float64, chunk)
	x := make([]float64, chunk)
	t := make([]float64, chunk)
	prices := make([]float64, chunk)

	useModel := false
	region, err := hpacml.NewRegion("options",
		hpacml.Directives(fmt.Sprintf(`
tensor functor(opt_in: [i, 0:3] = ([i]))
tensor functor(price_out: [i, 0:1] = ([i]))
tensor map(to: opt_in(S[0:NOPT], X[0:NOPT], T[0:NOPT]))
ml(predicated:useModel) in(S, X, T) out(price_out(prices[0:NOPT])) model(%q) db(%q)
`, modelPath, dbPath)),
		hpacml.BindInt("NOPT", chunk),
		hpacml.BindArray("S", s, chunk),
		hpacml.BindArray("X", x, chunk),
		hpacml.BindArray("T", t, chunk),
		hpacml.BindArray("prices", prices, chunk),
		hpacml.BindPredicate("useModel", func() bool { return useModel }),
	)
	if err != nil {
		log.Fatal(err)
	}
	defer region.Close()

	// stage loads chunk i's option parameters into the bound arrays.
	stage := func(i int) error {
		for j := 0; j < chunk; j++ {
			s[j] = 5 + float64((i*31+j*7)%25)
			x[j] = 1 + float64((i*13+j*3)%99)
			t[j] = 0.25 + float64((i+j)%39)*0.25
		}
		return nil
	}
	accurate := func() error {
		for j := 0; j < chunk; j++ {
			prices[j] = binomial.PriceAmericanCall(s[j], x[j], t[j], 0.02, 0.30, steps, nil)
		}
		return nil
	}

	// --- Phase 1: collect training data from the accurate lattice.
	fmt.Println("phase 1: collecting", nChunks, "chunks from the accurate path")
	for i := 0; i < nChunks; i++ {
		if err := stage(i); err != nil {
			log.Fatal(err)
		}
		if err := region.Execute(accurate); err != nil {
			log.Fatal(err)
		}
	}
	if err := region.Flush(); err != nil {
		log.Fatal(err)
	}

	// --- Phase 2: offline training.
	f, err := h5.Open(dbPath)
	if err != nil {
		log.Fatal(err)
	}
	xs, err := f.Read("options", "inputs")
	if err != nil {
		log.Fatal(err)
	}
	ys, err := f.Read("options", "outputs")
	if err != nil {
		log.Fatal(err)
	}
	ds, err := nn.NewDataset(xs, ys)
	if err != nil {
		log.Fatal(err)
	}
	net := nn.NewNetwork(13)
	net.Add(net.NewDense(3, 64), nn.NewActivation(nn.ActReLU),
		net.NewDense(64, 64), nn.NewActivation(nn.ActReLU),
		net.NewDense(64, 1))
	hist, err := net.Fit(ds, nil, nn.TrainConfig{Epochs: 30, BatchSize: 128, LR: 3e-3, Seed: 3})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("phase 2: trained %s, best validation loss %.3g\n", net.Summary(), hist.BestVal)
	if err := net.Save(modelPath); err != nil {
		log.Fatal(err)
	}

	// --- Phase 3: deploy sequentially, then batched.
	useModel = true
	region.ResetStats()

	// Each path runs twice: the first sweep warms its staging caches, the
	// second is the steady state that a long-running solver would see.
	sequential := make([][]float64, nChunks)
	var seqTime time.Duration
	for pass := 0; pass < 2; pass++ {
		t0 := time.Now()
		for i := 0; i < nChunks; i++ {
			if err := stage(i); err != nil {
				log.Fatal(err)
			}
			if err := region.Execute(nil); err != nil {
				log.Fatal(err)
			}
			sequential[i] = append(sequential[i][:0], prices...)
		}
		seqTime = time.Since(t0)
	}

	batched := make([][]float64, nChunks)
	var batchTime time.Duration
	for pass := 0; pass < 2; pass++ {
		t0 := time.Now()
		err = region.ExecuteBatch(nChunks, stage, func(i int) error {
			batched[i] = append(batched[i][:0], prices...)
			return nil
		})
		if err != nil {
			log.Fatal(err)
		}
		batchTime = time.Since(t0)
	}

	for i := range sequential {
		for j := range sequential[i] {
			if sequential[i][j] != batched[i][j] {
				log.Fatalf("batched price differs at chunk %d option %d", i, j)
			}
		}
	}
	st := region.Stats()
	fmt.Printf("phase 3: %d chunks sequential %v, batched %v (bit-identical prices)\n",
		nChunks, seqTime, batchTime)
	fmt.Printf("  stats: %d invocations, %d batched in %d batch\n",
		st.Invocations, st.BatchedInvocations, st.Batches)
	fmt.Printf("  phase split: to-tensor %v, inference %v+%v batched, from-tensor %v (bridge overhead %.1f%%)\n",
		st.ToTensor, st.Inference, st.BatchInference, st.FromTensor, st.BridgeOverhead()*100)
}
