// Remote backend: the annotation stays fixed while the runtime decides
// where the surrogate executes. A Region whose model() clause carries
// an http(s):// URI runs its inference against a hpacml-serve instance
// through the runtime's remote engine — same directives, same bridge,
// different backend — and the automatic fallback policy runs the
// accurate code path whenever the engine cannot answer (server down,
// context deadline expired), which is the paper's predicated
// conditional execution extended to distributed deployments.
//
// Self-contained demo (trains a toy model and serves it in-process):
//
//	go run ./examples/remote
//
// Or point it at a running hpacml-serve (the CI smoke job's
// remote-backend leg does exactly this):
//
//	go run ./examples/remote -target http://127.0.0.1:8080 -model binomial
//
// The program exits non-zero unless remote execution round-trips AND
// both fallback paths (dead server, expired deadline) run the accurate
// code, so it doubles as an end-to-end acceptance check.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"math"
	"math/rand"
	"net/http/httptest"
	"os"
	"path/filepath"
	"time"

	hpacml "repro"

	"repro/internal/nn"
	"repro/internal/serve"
	"repro/internal/serveclient"
	"repro/internal/tensor"
)

// trainToy fits a tiny MLP to a smooth 3->1 function and saves it.
func trainToy(path string, seed int64) error {
	const inDim, outDim, samples = 3, 1, 1024
	rng := rand.New(rand.NewSource(seed))
	xs := tensor.New(samples, inDim)
	ys := tensor.New(samples, outDim)
	for i := 0; i < samples; i++ {
		a, b, c := rng.Float64(), rng.Float64(), rng.Float64()
		xs.Data()[i*inDim+0] = a
		xs.Data()[i*inDim+1] = b
		xs.Data()[i*inDim+2] = c
		ys.Data()[i] = math.Sin(a+b) + 0.5*c
	}
	ds, err := nn.NewDataset(xs, ys)
	if err != nil {
		return err
	}
	net := nn.NewNetwork(seed)
	net.Add(net.NewDense(inDim, 16), nn.NewActivation(nn.ActTanh), net.NewDense(16, outDim))
	if _, err := net.Fit(ds, nil, nn.TrainConfig{Epochs: 30, BatchSize: 64, LR: 0.01, Seed: seed}); err != nil {
		return err
	}
	return net.Save(path)
}

// vectorRegion builds the generic flat [1, in] -> [1, out] region used
// throughout: x is gathered as the model input, the answer scattered
// into y. modelRef is a path or a model URI — the one line that picks
// the backend.
func vectorRegion(name, modelRef string, x, y []float64) (*hpacml.Region, error) {
	return hpacml.NewRegion(name,
		hpacml.Directives(fmt.Sprintf(`
tensor functor(vin: [i, 0:FIN] = ([0:FIN]))
tensor functor(vout: [i, 0:FOUT] = ([0:FOUT]))
tensor map(to: vin(x[0:1]))
tensor map(from: vout(y[0:1]))
ml(infer) in(x) out(y) model(%q)
`, modelRef)),
		hpacml.BindInt("FIN", len(x)),
		hpacml.BindInt("FOUT", len(y)),
		hpacml.BindArray("x", x, len(x)),
		hpacml.BindArray("y", y, len(y)),
	)
}

func main() {
	target := flag.String("target", "", "base URL of a running hpacml-serve; empty self-hosts a demo server")
	model := flag.String("model", "", "served model name (default: the server's first)")
	invocations := flag.Int("n", 32, "region invocations to run remotely")
	flag.Parse()
	log.SetFlags(0)
	log.SetPrefix("remote: ")

	if *target == "" {
		fmt.Println("phase 0: no -target; training a toy surrogate and self-hosting it")
		dir, err := os.MkdirTemp("", "hpacml-remote-")
		if err != nil {
			log.Fatal(err)
		}
		defer os.RemoveAll(dir)
		modelPath := filepath.Join(dir, "toy.gmod")
		if err := trainToy(modelPath, 11); err != nil {
			log.Fatal(err)
		}
		srv, err := serve.NewServer(serve.Config{MaxBatch: 16, Workers: 2},
			serve.ModelSpec{Name: "toy", Path: modelPath})
		if err != nil {
			log.Fatal(err)
		}
		defer srv.Close()
		ts := httptest.NewServer(serve.NewHandler(srv))
		defer ts.Close()
		*target = ts.URL
	}

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	client := serveclient.New(*target)
	info, err := client.Model(ctx, *model)
	if err != nil {
		log.Fatal(err)
	}
	modelURI := fmt.Sprintf("%s/%s", client.Base(), info.Name)
	fmt.Printf("phase 1: region annotated with model(%q) — remote engine, %d -> %d features\n",
		modelURI, info.InDim, info.OutDim)

	x := make([]float64, info.InDim)
	y := make([]float64, info.OutDim)
	region, err := vectorRegion("remote-demo", modelURI, x, y)
	if err != nil {
		log.Fatal(err)
	}
	defer region.Close()

	// The accurate path just marks that it ran; a real application
	// would run the original computation here.
	accurateRan := 0
	accurate := func() error {
		accurateRan++
		for i := range y {
			y[i] = -1
		}
		return nil
	}

	rng := rand.New(rand.NewSource(3))
	for i := 0; i < *invocations; i++ {
		for j := range x {
			x[j] = rng.Float64()
		}
		if err := region.ExecuteContext(ctx, accurate); err != nil {
			log.Fatalf("invocation %d: %v", i, err)
		}
	}
	st := region.Stats()
	fmt.Printf("  %d invocations: remote=%d fallbacks=%d (last answer %.4f)\n",
		st.Invocations, st.RemoteInference, st.Fallbacks, y[0])
	if st.RemoteInference != *invocations || st.Fallbacks != 0 || accurateRan != 0 {
		log.Fatalf("expected all %d invocations to execute remotely, got remote=%d fallbacks=%d accurate=%d",
			*invocations, st.RemoteInference, st.Fallbacks, accurateRan)
	}

	fmt.Println("phase 2: dead server — the fallback policy runs the accurate path")
	deadRegion, err := vectorRegion("remote-dead", "http://127.0.0.1:1/nowhere", x, y)
	if err != nil {
		log.Fatal(err)
	}
	defer deadRegion.Close()
	if err := deadRegion.ExecuteContext(ctx, accurate); err != nil {
		log.Fatalf("fallback should swallow the dead-server error, got: %v", err)
	}
	dst := deadRegion.Stats()
	fmt.Printf("  fallbacks=%d accurate_runs=%d\n", dst.Fallbacks, dst.AccurateRuns)
	if dst.Fallbacks != 1 || accurateRan != 1 {
		log.Fatalf("expected exactly one fallback through the accurate path, got fallbacks=%d accurate=%d",
			dst.Fallbacks, accurateRan)
	}

	fmt.Println("phase 3: expired deadline — cancellation reaches the wire, accurate path runs")
	expired, cancelExpired := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer cancelExpired()
	if err := region.ExecuteContext(expired, accurate); err != nil {
		log.Fatalf("fallback should swallow the deadline error, got: %v", err)
	}
	st = region.Stats()
	fmt.Printf("  fallbacks=%d accurate_runs=%d\n", st.Fallbacks, st.AccurateRuns)
	if st.Fallbacks != 1 || accurateRan != 2 {
		log.Fatalf("expected a deadline fallback, got fallbacks=%d accurate=%d", st.Fallbacks, accurateRan)
	}
	fmt.Println("remote backend round-trip and both fallback paths verified")
}
