package hpacml

import (
	"context"
	"math"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/nn"
	"repro/internal/tensor"
)

// fitI8Sidecar saves the net, fits a gated calibration on slab rows,
// and writes the ".quant" sidecar beside the model — the exact artifact
// chain hpacml-quant produces.
func fitI8Sidecar(t *testing.T, net *nn.Network, path string, cfg QuantFitConfig) {
	t.Helper()
	if err := net.Save(path); err != nil {
		t.Fatal(err)
	}
	calib, err := FitQuant(net, quantSlab(21, 400, 5), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := calib.SaveQuant(nn.QuantPath(path)); err != nil {
		t.Fatal(err)
	}
}

// TestLocalEngineInt8 checks the engine-level int8 contract: opted-in
// engines auto-load the ".quant" sidecar beside the model and compile
// the int8 program, batched inference stays within the calibration's
// gate tolerance of the float64 engine, and Refresh/Invalidate drop the
// program with the network.
func TestLocalEngineInt8(t *testing.T) {
	ClearModelCache()
	path := filepath.Join(t.TempDir(), "m.gmod")
	net := quantTestNet(7)
	// The untrained net's near-zero outputs inflate the relative
	// metric, same as TestFitQuantFromDB; rtol 0.1 is the fit config,
	// not the engine's business — it just checks the stamped verdict.
	fitI8Sidecar(t, net, path, QuantFitConfig{RTol: 0.1})

	e8 := NewLocalEngine(path, WithInt8Inference())
	e64 := NewLocalEngine(path)
	if !e8.Int8() || e64.Int8() {
		t.Fatal("Int8() must reflect the option")
	}
	ctx := context.Background()
	if err := e8.Warmup(ctx, []int{4, 5}); err != nil {
		t.Fatal(err)
	}
	if e8.fwdI8 == nil {
		t.Fatal("int8 engine must compile the sidecar program at load")
	}

	const rows = 32
	in := quantSlab(29, rows, 5) // in-distribution with the calibration slab
	out8 := tensor.New(rows, 1)
	out64 := tensor.New(rows, 1)
	if err := e8.Infer(ctx, in, out8); err != nil {
		t.Fatal(err)
	}
	if err := e64.Infer(ctx, in, out64); err != nil {
		t.Fatal(err)
	}
	if e := meanRelL2(out8.Data(), out64.Data(), rows, 1); !(e < 0.15) {
		t.Fatalf("engine int8 drifted from float64: mean relative L2 %g", e)
	}
	// Quantization must actually be in the path: bitwise-equal outputs
	// would mean the engine silently served float64.
	same := true
	for i, got := range out8.Data() {
		if got != out64.Data()[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("int8 outputs bitwise-equal to float64 — quantized path not taken")
	}

	e8.Refresh()
	if e8.fwdI8 != nil {
		t.Fatal("Refresh must drop the int8 program")
	}
	if err := e8.Infer(ctx, in, out8); err != nil {
		t.Fatal(err)
	}
	if e8.fwdI8 == nil {
		t.Fatal("inference after Refresh must recompile the int8 program")
	}
	e8.Invalidate()
	if e8.fwdI8 != nil {
		t.Fatal("Invalidate must drop the int8 program")
	}
}

// TestLocalEngineInt8Fallback: no sidecar, a corrupt sidecar, or a
// hand-edited failing gate verdict all leave the engine serving the
// wide path — opting in never changes which calls succeed.
func TestLocalEngineInt8Fallback(t *testing.T) {
	ctx := context.Background()
	run := func(t *testing.T, path string) {
		e := NewLocalEngine(path, WithInt8Inference())
		if err := e.Warmup(ctx, []int{2, 5}); err != nil {
			t.Fatal(err)
		}
		if e.fwdI8 != nil {
			t.Fatal("engine must not compile an int8 program here")
		}
		in := tensor.New(2, 5)
		out := tensor.New(2, 1)
		if err := e.Infer(ctx, in, out); err != nil {
			t.Fatalf("wide-path fallback inference: %v", err)
		}
	}

	t.Run("no-sidecar", func(t *testing.T) {
		ClearModelCache()
		path := filepath.Join(t.TempDir(), "m.gmod")
		if err := quantTestNet(3).Save(path); err != nil {
			t.Fatal(err)
		}
		run(t, path)
	})

	t.Run("corrupt-sidecar", func(t *testing.T) {
		ClearModelCache()
		path := filepath.Join(t.TempDir(), "m.gmod")
		if err := quantTestNet(3).Save(path); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(nn.QuantPath(path), []byte("not a sidecar"), 0o644); err != nil {
			t.Fatal(err)
		}
		run(t, path)
	})

	t.Run("failed-gate-verdict", func(t *testing.T) {
		// A sidecar stamped with a failing gate must be refused at load
		// even though it decodes and compiles — the load-time half of the
		// accuracy contract.
		ClearModelCache()
		path := filepath.Join(t.TempDir(), "m.gmod")
		net := quantTestNet(3)
		if err := net.Save(path); err != nil {
			t.Fatal(err)
		}
		calib, err := FitQuant(net, quantSlab(23, 400, 5), QuantFitConfig{RTol: 0.1})
		if err != nil {
			t.Fatal(err)
		}
		calib.GateErr = math.Inf(1) // forge a failing verdict
		if err := calib.SaveQuant(nn.QuantPath(path)); err != nil {
			t.Fatal(err)
		}
		run(t, path)
	})
}

// TestRegionInt8Precedence: the quant(int8|off) clause configures the
// region's own engine, and WithInt8 overrides the clause — the same
// option-beats-directive rule f32, capture, and trust follow.
func TestRegionInt8Precedence(t *testing.T) {
	ClearModelCache()
	path := filepath.Join(t.TempDir(), "m.gmod")
	net := quantTestNet(7)
	fitI8Sidecar(t, net, path, QuantFitConfig{RTol: 0.1})

	mk := func(clause string, opts ...Option) *Region {
		t.Helper()
		in := make([]float64, 5)
		out := make([]float64, 1)
		all := append([]Option{
			Directives(`
tensor functor(ifn: [i, 0:5] = ([i*5:i*5+5]))
tensor functor(ofn: [i, 0:1] = ([i*1:i*1+1]))
tensor map(to: ifn(x[0:1]))
tensor map(from: ofn(y[0:1]))
ml(infer) in(x) out(y) model("` + path + `")` + clause),
			BindArray("x", in, 5),
			BindArray("y", out, 1),
		}, opts...)
		r, err := NewRegion("r", all...)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { r.Close() })
		return r
	}

	cases := []struct {
		name   string
		clause string
		opts   []Option
		want   bool
	}{
		{"default-off", "", nil, false},
		{"clause-int8", " quant(int8)", nil, true},
		{"clause-off", " quant(off)", nil, false},
		{"option-beats-clause", " quant(int8)", []Option{WithInt8(false)}, false},
		{"option-on", "", []Option{WithInt8(true)}, true},
		{"composes-with-f32", " f32(on) quant(int8)", nil, true},
	}
	for _, tc := range cases {
		r := mk(tc.clause, tc.opts...)
		if err := r.ensureEngine(); err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		le, ok := r.Engine().(*LocalEngine)
		if !ok {
			t.Fatalf("%s: engine %T", tc.name, r.Engine())
		}
		if le.Int8() != tc.want {
			t.Fatalf("%s: Int8() = %v, want %v", tc.name, le.Int8(), tc.want)
		}
		if tc.name == "composes-with-f32" && !le.Float32() {
			t.Fatalf("%s: f32(on) lost when composed with quant", tc.name)
		}
	}
}
