package hpacml

import (
	"context"
	"fmt"
	"sync"

	"repro/internal/nn"
	"repro/internal/tensor"
)

// modelCache shares loaded models across local engines keyed by path,
// matching the paper's "loads the model file if it has not already been
// loaded". It lives with the local backend: remote engines never touch
// it, and the serving registry publishes validated networks into it
// with StoreModel so a whole replica pool swaps onto one object.
var modelCache sync.Map // string -> *nn.Network

// ClearModelCache drops all cached models (used by tests and the
// model-cache ablation benchmark).
func ClearModelCache() { modelCache = sync.Map{} }

// StoreModel publishes an already-loaded model under path in the shared
// local-engine model cache, so every region whose model() clause names
// that path resolves to this exact object on its next (re)load. The
// serving registry's hot reload validates one loaded network and then
// publishes it here, making the swap atomic across its replica pool.
func StoreModel(path string, m *nn.Network) { modelCache.Store(path, m) }

// LocalEngine is the default backend: in-process inference on a
// network loaded from a .gmod file through the shared path-keyed model
// cache. It is the engine every region with a plain file path in its
// model() clause gets, and its behavior — cache sharing, refresh
// re-resolving from the cache without touching disk, invalidate
// evicting the cache entry — is exactly the model handling Region
// itself used to hard-wire.
type LocalEngine struct {
	path  string
	net   *nn.Network
	f32   bool
	fwd32 *nn.Forward32
}

// LocalOption configures a LocalEngine at construction.
type LocalOption func(*LocalEngine)

// WithFloat32Inference makes the engine run batched inference in
// single precision: the network's weights are converted to float32
// once at load, and rank-2 batches then run through the flat f32
// kernels (nn.Forward32) instead of the float64 tensor path. Models
// the f32 compiler does not support (convolutions) silently keep the
// float64 path, as do non-contiguous or higher-rank inputs.
func WithFloat32Inference() LocalOption {
	return func(e *LocalEngine) { e.f32 = true }
}

// NewLocalEngine builds a local engine for a .gmod path. The file is
// not touched until Warmup (or the first inference).
func NewLocalEngine(path string, opts ...LocalOption) *LocalEngine {
	e := &LocalEngine{path: path}
	for _, opt := range opts {
		opt(e)
	}
	return e
}

// Float32 reports whether the engine was built with
// WithFloat32Inference.
func (e *LocalEngine) Float32() bool { return e.f32 }

// Path returns the model path the engine loads from.
func (e *LocalEngine) Path() string { return e.path }

// Network returns the loaded network, or nil before warmup (or after
// Refresh). Stats layers use it to report parameter counts.
func (e *LocalEngine) Network() *nn.Network { return e.net }

// ensure resolves the network: the engine's own pointer, then the
// shared cache, then disk (publishing the load for other engines).
func (e *LocalEngine) ensure() error {
	if e.net != nil {
		return nil
	}
	if e.path == "" {
		return fmt.Errorf("hpacml: local engine has no model path")
	}
	if cached, ok := modelCache.Load(e.path); ok {
		e.net = cached.(*nn.Network)
		e.compile32()
		return nil
	}
	m, err := nn.Load(e.path)
	if err != nil {
		return err
	}
	modelCache.Store(e.path, m)
	e.net = m
	e.compile32()
	return nil
}

// compile32 snapshots the freshly resolved network into a float32
// program when the engine opted in. Compilation failure (unsupported
// layers) is not an error: the engine keeps the float64 path.
func (e *LocalEngine) compile32() {
	e.fwd32 = nil
	if !e.f32 {
		return
	}
	if f, err := nn.NewForward32(e.net); err == nil {
		e.fwd32 = f
	}
}

// Warmup loads the model (via the shared cache) so load errors surface
// before traffic. The input shape needs no validation here: the
// network's own shape checks run in OutputShape and Infer.
func (e *LocalEngine) Warmup(ctx context.Context, inShape []int) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	return e.ensure()
}

// OutputShape maps the full input shape to the network's output shape:
// the leading entry/batch dimension passes through, the per-sample
// remainder goes through the network's layer shape propagation.
func (e *LocalEngine) OutputShape(in []int) ([]int, error) {
	if err := e.ensure(); err != nil {
		return nil, err
	}
	if len(in) < 2 {
		return nil, fmt.Errorf("hpacml: local engine wants a batched input shape, got %v", in)
	}
	sample, err := e.net.OutShape(in[1:])
	if err != nil {
		return nil, err
	}
	return append([]int{in[0]}, sample...), nil
}

// Infer runs the network's zero-allocation inference pass into out.
func (e *LocalEngine) Infer(ctx context.Context, in, out *tensor.Tensor) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	if err := e.ensure(); err != nil {
		return err
	}
	if f := e.fwd32; f != nil &&
		in.Rank() == 2 && out.Rank() == 2 && in.IsContiguous() && out.IsContiguous() &&
		in.Dim(1) == f.InDim() && out.Dim(0) == in.Dim(0) && out.Dim(1) == f.OutDim() {
		return f.ForwardFloat64(out.Data(), in.Data(), in.Dim(0))
	}
	return e.net.ForwardInto(out, in)
}

// Refresh drops the engine's network pointer so the next use
// re-resolves from the shared cache — the replica-pool hot-reload swap,
// which must not re-read disk (a concurrent retrain could hand
// different replicas different or torn bytes for the same swap).
func (e *LocalEngine) Refresh() { e.net, e.fwd32 = nil, nil }

// Invalidate additionally evicts the shared cache entry, forcing the
// next load to re-read the file (e.g. after a new training round wrote
// it).
func (e *LocalEngine) Invalidate() {
	e.net, e.fwd32 = nil, nil
	if e.path != "" {
		modelCache.Delete(e.path)
	}
}
