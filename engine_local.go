package hpacml

import (
	"context"
	"fmt"
	"sync"

	"repro/internal/nn"
	"repro/internal/tensor"
)

// modelCache shares loaded models across local engines keyed by path,
// matching the paper's "loads the model file if it has not already been
// loaded". It lives with the local backend: remote engines never touch
// it, and the serving registry publishes validated networks into it
// with StoreModel so a whole replica pool swaps onto one object.
var modelCache sync.Map // string -> *nn.Network

// ClearModelCache drops all cached models (used by tests and the
// model-cache ablation benchmark).
func ClearModelCache() { modelCache = sync.Map{} }

// StoreModel publishes an already-loaded model under path in the shared
// local-engine model cache, so every region whose model() clause names
// that path resolves to this exact object on its next (re)load. The
// serving registry's hot reload validates one loaded network and then
// publishes it here, making the swap atomic across its replica pool.
func StoreModel(path string, m *nn.Network) { modelCache.Store(path, m) }

// LocalEngine is the default backend: in-process inference on a
// network loaded from a .gmod file through the shared path-keyed model
// cache. It is the engine every region with a plain file path in its
// model() clause gets, and its behavior — cache sharing, refresh
// re-resolving from the cache without touching disk, invalidate
// evicting the cache entry — is exactly the model handling Region
// itself used to hard-wire.
type LocalEngine struct {
	path  string
	net   *nn.Network
	f32   bool
	fwd32 *nn.Forward32
	i8    bool
	fwdI8 *nn.ForwardI8

	// Shaped f32 program for conv models, compiled lazily on the first
	// higher-rank batch (the sample shape is not known at load time).
	// shapedSample remembers which shape the program — or the cached
	// compile failure — belongs to.
	fwdShaped    *nn.Forward32
	shapedSample []int
	shapedFailed bool
}

// LocalOption configures a LocalEngine at construction.
type LocalOption func(*LocalEngine)

// WithFloat32Inference makes the engine run batched inference in
// single precision: the network's weights are converted to float32
// once at load, and rank-2 batches then run through the flat f32
// kernels (nn.Forward32) instead of the float64 tensor path. Conv
// models compile lazily on the first higher-rank contiguous batch via
// nn.NewForward32Shaped (the per-sample shape is only known then);
// models neither compiler supports silently keep the float64 path, as
// do non-contiguous inputs.
func WithFloat32Inference() LocalOption {
	return func(e *LocalEngine) { e.f32 = true }
}

// WithInt8Inference makes the engine run batched inference through the
// quantized int8 program compiled from the model's ".quant" sidecar
// (written by hpacml-quant after a gated calibration fit). The sidecar
// is resolved beside the model file at load, exactly like the
// guardrail's ".guard" convention. The path only activates when the
// sidecar exists, decodes, carries a passing accuracy-gate verdict, and
// compiles against the loaded network; any failure silently keeps the
// wider path (f32 if also enabled, else float64), so enabling int8
// never changes which calls succeed — only their precision and speed.
func WithInt8Inference() LocalOption {
	return func(e *LocalEngine) { e.i8 = true }
}

// NewLocalEngine builds a local engine for a .gmod path. The file is
// not touched until Warmup (or the first inference).
func NewLocalEngine(path string, opts ...LocalOption) *LocalEngine {
	e := &LocalEngine{path: path}
	for _, opt := range opts {
		opt(e)
	}
	return e
}

// Float32 reports whether the engine was built with
// WithFloat32Inference.
func (e *LocalEngine) Float32() bool { return e.f32 }

// Int8 reports whether the engine was built with WithInt8Inference.
// Note this is the request, not the outcome: a missing or gate-failed
// sidecar leaves the engine serving in wide precision regardless.
func (e *LocalEngine) Int8() bool { return e.i8 }

// Path returns the model path the engine loads from.
func (e *LocalEngine) Path() string { return e.path }

// Network returns the loaded network, or nil before warmup (or after
// Refresh). Stats layers use it to report parameter counts.
func (e *LocalEngine) Network() *nn.Network { return e.net }

// ensure resolves the network: the engine's own pointer, then the
// shared cache, then disk (publishing the load for other engines).
func (e *LocalEngine) ensure() error {
	if e.net != nil {
		return nil
	}
	if e.path == "" {
		return fmt.Errorf("hpacml: local engine has no model path")
	}
	if cached, ok := modelCache.Load(e.path); ok {
		e.net = cached.(*nn.Network)
		e.compile32()
		e.compileI8()
		return nil
	}
	m, err := nn.Load(e.path)
	if err != nil {
		return err
	}
	modelCache.Store(e.path, m)
	e.net = m
	e.compile32()
	e.compileI8()
	return nil
}

// compile32 snapshots the freshly resolved network into a float32
// program when the engine opted in. Compilation failure (unsupported
// layers) is not an error: the engine keeps the float64 path.
func (e *LocalEngine) compile32() {
	e.fwd32 = nil
	e.fwdShaped, e.shapedSample, e.shapedFailed = nil, nil, false
	if !e.f32 {
		return
	}
	if f, err := nn.NewForward32(e.net); err == nil {
		e.fwd32 = f
	}
}

// compileI8 compiles the freshly resolved network into an int8 program
// from its ".quant" sidecar when the engine opted in. Every failure —
// no sidecar on disk, a corrupt sidecar, a stamped-but-failed accuracy
// gate, a calibration that does not match the network's geometry — is
// deliberately not an error: the engine keeps the wider path. The gate
// re-check here is the load-time half of the accuracy contract: the fit
// step refuses to write a failing sidecar, and the engine refuses to
// serve one even if it somehow appears.
func (e *LocalEngine) compileI8() {
	e.fwdI8 = nil
	if !e.i8 || e.path == "" {
		return
	}
	calib, err := nn.LoadQuant(nn.QuantPath(e.path))
	if err != nil || !calib.GatePassed() {
		return
	}
	if f, err := nn.NewForwardI8(e.net, calib); err == nil {
		e.fwdI8 = f
	}
}

// Warmup loads the model (via the shared cache) so load errors surface
// before traffic. The input shape needs no validation here: the
// network's own shape checks run in OutputShape and Infer.
func (e *LocalEngine) Warmup(ctx context.Context, inShape []int) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	return e.ensure()
}

// OutputShape maps the full input shape to the network's output shape:
// the leading entry/batch dimension passes through, the per-sample
// remainder goes through the network's layer shape propagation.
func (e *LocalEngine) OutputShape(in []int) ([]int, error) {
	if err := e.ensure(); err != nil {
		return nil, err
	}
	if len(in) < 2 {
		return nil, fmt.Errorf("hpacml: local engine wants a batched input shape, got %v", in)
	}
	sample, err := e.net.OutShape(in[1:])
	if err != nil {
		return nil, err
	}
	return append([]int{in[0]}, sample...), nil
}

// Infer runs the network's zero-allocation inference pass into out.
func (e *LocalEngine) Infer(ctx context.Context, in, out *tensor.Tensor) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	if err := e.ensure(); err != nil {
		return err
	}
	if f := e.fwdI8; f != nil &&
		in.Rank() == 2 && out.Rank() == 2 && in.IsContiguous() && out.IsContiguous() &&
		in.Dim(1) == f.InDim() && out.Dim(0) == in.Dim(0) && out.Dim(1) == f.OutDim() {
		return f.Forward(out.Data(), in.Data(), in.Dim(0))
	}
	if f := e.fwd32; f != nil &&
		in.Rank() == 2 && out.Rank() == 2 && in.IsContiguous() && out.IsContiguous() &&
		in.Dim(1) == f.InDim() && out.Dim(0) == in.Dim(0) && out.Dim(1) == f.OutDim() {
		return f.ForwardFloat64(out.Data(), in.Data(), in.Dim(0))
	}
	if e.f32 && e.fwd32 == nil && in.Rank() >= 2 && out.Rank() >= 2 &&
		in.IsContiguous() && out.IsContiguous() && out.Dim(0) == in.Dim(0) {
		if f := e.shaped(in.Shape()[1:]); f != nil &&
			in.Len() == in.Dim(0)*f.InDim() && out.Len() == in.Dim(0)*f.OutDim() {
			return f.ForwardFloat64(out.Data(), in.Data(), in.Dim(0))
		}
	}
	return e.net.ForwardInto(out, in)
}

// shaped returns the f32 program compiled for the given per-sample
// shape, compiling on first use and caching one program (and one
// failure verdict) per shape — batches with a new sample shape
// recompile, repeated shapes pay nothing. A nil return means "use the
// float64 path for this batch".
func (e *LocalEngine) shaped(sample []int) *nn.Forward32 {
	if sameInts(e.shapedSample, sample) {
		if e.shapedFailed {
			return nil
		}
		return e.fwdShaped
	}
	e.shapedSample = append([]int(nil), sample...)
	f, err := nn.NewForward32Shaped(e.net, sample)
	if err != nil {
		e.fwdShaped, e.shapedFailed = nil, true
		return nil
	}
	e.fwdShaped, e.shapedFailed = f, false
	return f
}

func sameInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// Refresh drops the engine's network pointer so the next use
// re-resolves from the shared cache — the replica-pool hot-reload swap,
// which must not re-read disk (a concurrent retrain could hand
// different replicas different or torn bytes for the same swap).
func (e *LocalEngine) Refresh() {
	e.net, e.fwd32, e.fwdI8 = nil, nil, nil
	e.fwdShaped, e.shapedSample, e.shapedFailed = nil, nil, false
}

// Invalidate additionally evicts the shared cache entry, forcing the
// next load to re-read the file (e.g. after a new training round wrote
// it).
func (e *LocalEngine) Invalidate() {
	e.net, e.fwd32, e.fwdI8 = nil, nil, nil
	e.fwdShaped, e.shapedSample, e.shapedFailed = nil, nil, false
	if e.path != "" {
		modelCache.Delete(e.path)
	}
}
