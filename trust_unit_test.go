// Unit tests for the trust-routing building blocks: guardrail fitting
// and checking, ensemble variance semantics, FallbackEngine gating, and
// the Region-level routing/advisory behavior of a single Execute.
package hpacml_test

import (
	"context"
	"math"
	"path/filepath"
	"strings"
	"testing"

	hpacml "repro"

	"repro/internal/tensor"
)

// constEngine is a stub engine writing one constant everywhere.
type constEngine struct {
	val    float64
	outDim int
}

func (e *constEngine) Infer(ctx context.Context, in, out *tensor.Tensor) error {
	d := out.Data()
	for i := range d {
		d[i] = e.val
	}
	return nil
}
func (e *constEngine) OutputShape(in []int) ([]int, error) {
	return []int{in[0], e.outDim}, nil
}
func (e *constEngine) Warmup(ctx context.Context, inShape []int) error { return nil }

// varianceEngine is a constEngine that also reports a preset per-row
// predictive variance, standing in for an ensemble.
type varianceEngine struct {
	constEngine
	rowVar []float64
}

func (e *varianceEngine) RowVariance() []float64 { return e.rowVar }

func TestWithTrustValidation(t *testing.T) {
	x := make([]float64, 2)
	y := make([]float64, 1)
	build := func(cfg hpacml.TrustConfig) error {
		_, err := hpacml.NewRegion("cfg",
			hpacml.Directives(`
tensor functor(vin: [i, 0:2] = ([0:2]))
tensor functor(vout: [i, 0:1] = ([0:1]))
tensor map(to: vin(x[0:1]))
tensor map(from: vout(y[0:1]))
ml(infer) in(x) out(y)
`),
			hpacml.BindArray("x", x, 2),
			hpacml.BindArray("y", y, 1),
			hpacml.WithEngine(&constEngine{outDim: 1}),
			hpacml.WithTrust(cfg),
		)
		return err
	}
	if err := build(hpacml.TrustConfig{MaxVariance: -1}); err == nil {
		t.Error("negative variance threshold must be rejected")
	}
	if err := build(hpacml.TrustConfig{}); err == nil {
		t.Error("a trust config selecting no gate must be rejected")
	}
	if err := build(hpacml.TrustConfig{MaxVariance: 0.5}); err != nil {
		t.Errorf("valid variance-only config rejected: %v", err)
	}
}

// TestVarianceGateNeedsVarianceReporter: trust(var:V) over an engine
// that measures no predictive variance would silently never fire, so
// the configuration must fail before traffic.
func TestVarianceGateNeedsVarianceReporter(t *testing.T) {
	x := make([]float64, 2)
	y := make([]float64, 1)
	r, err := hpacml.NewRegion("novar",
		hpacml.Directives(`
tensor functor(vin: [i, 0:2] = ([0:2]))
tensor functor(vout: [i, 0:1] = ([0:1]))
tensor map(to: vin(x[0:1]))
tensor map(from: vout(y[0:1]))
ml(infer) in(x) out(y)
`),
		hpacml.BindArray("x", x, 2),
		hpacml.BindArray("y", y, 1),
		hpacml.WithEngine(&constEngine{outDim: 1}),
		hpacml.WithTrust(hpacml.TrustConfig{MaxVariance: 0.5}),
	)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	err = r.Execute(nil)
	if err == nil || !strings.Contains(err.Error(), "variance") {
		t.Fatalf("want a variance-reporter config error, got %v", err)
	}
}

// TestTrustDomainRemoteModelNeedsExplicitGuardrail: a remote model URI
// has no local .guard sidecar, so trust(domain:on) without an explicit
// GuardrailPath must fail loudly instead of silently skipping the gate.
func TestTrustDomainRemoteModelNeedsExplicitGuardrail(t *testing.T) {
	x := make([]float64, 2)
	y := make([]float64, 1)
	r, err := hpacml.NewRegion("remote-guard",
		hpacml.Directives(`
tensor functor(vin: [i, 0:2] = ([0:2]))
tensor functor(vout: [i, 0:1] = ([0:1]))
tensor map(to: vin(x[0:1]))
tensor map(from: vout(y[0:1]))
ml(infer) in(x) out(y) model("http://127.0.0.1:1/vec") trust(domain:on)
`),
		hpacml.BindArray("x", x, 2),
		hpacml.BindArray("y", y, 1),
	)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	err = r.Execute(nil)
	if err == nil || !strings.Contains(err.Error(), "guardrail sidecar") {
		t.Fatalf("want the guardrail-sidecar config error, got %v", err)
	}
}

// TestEnsembleVarianceSemantics pins the variance definition on stub
// members: zero for a single member, the population variance of the
// member spread otherwise, and maximal uncertainty when a member emits
// NaN — a non-finite surrogate output must never read as confident.
func TestEnsembleVarianceSemantics(t *testing.T) {
	in := goldenBatch(t, 3, 2)
	infer := func(members ...hpacml.Engine) []float64 {
		t.Helper()
		eng, err := hpacml.NewEnsembleEngine(members...)
		if err != nil {
			t.Fatal(err)
		}
		defer eng.Close()
		out := tensor.New(3, 1)
		if err := eng.Infer(t.Context(), in, out); err != nil {
			t.Fatal(err)
		}
		return append([]float64(nil), eng.RowVariance()...)
	}

	for r, v := range infer(&constEngine{val: 5, outDim: 1}) {
		if v != 0 {
			t.Errorf("single member row %d variance = %v, want 0", r, v)
		}
	}

	// Members at 1 and 3: mean 2, population variance 1 per feature.
	for r, v := range infer(&constEngine{val: 1, outDim: 1}, &constEngine{val: 3, outDim: 1}) {
		if v != 1 {
			t.Errorf("disagreeing members row %d variance = %v, want 1", r, v)
		}
	}

	// One NaN member poisons every row: variance must read +Inf, never 0.
	for r, v := range infer(&constEngine{val: 1, outDim: 1}, &constEngine{val: math.NaN(), outDim: 1}) {
		if !math.IsInf(v, 1) {
			t.Errorf("NaN member row %d variance = %v, want +Inf", r, v)
		}
	}
}

// TestFallbackEngineGates drives both gates directly: the variance
// threshold rejects exactly the rows above it, the guardrail rejects
// exactly the out-of-envelope rows, and an ungated wrapper reports no
// verdicts at all.
func TestFallbackEngineGates(t *testing.T) {
	in, err := tensor.FromSlice([]float64{
		0.5, 0.5, // in domain, low variance
		0.5, 0.5, // in domain, high variance
		9.0, 0.5, // out of domain, low variance
	}, 3, 2)
	if err != nil {
		t.Fatal(err)
	}
	out := tensor.New(3, 1)
	g := &hpacml.Guardrail{Lo: []float64{0, 0}, Hi: []float64{1, 1}}

	fb := hpacml.NewFallbackEngine(&varianceEngine{
		constEngine: constEngine{val: 2, outDim: 1},
		rowVar:      []float64{0.1, 7.0, 0.1},
	})
	fb.MaxVariance = 1
	fb.Guardrail = g
	if err := fb.Warmup(t.Context(), in.Shape()); err != nil {
		t.Fatal(err)
	}
	if err := fb.Infer(t.Context(), in, out); err != nil {
		t.Fatal(err)
	}
	rep := fb.TrustReport()
	if rep == nil || rep.Rows != 3 {
		t.Fatalf("gated engine must report, got %+v", rep)
	}
	wantOOD := []bool{false, false, true}
	wantUnc := []bool{false, true, false}
	for i := 0; i < 3; i++ {
		if rep.OOD[i] != wantOOD[i] || rep.Uncertain[i] != wantUnc[i] {
			t.Errorf("row %d: ood=%v uncertain=%v, want %v/%v", i, rep.OOD[i], rep.Uncertain[i], wantOOD[i], wantUnc[i])
		}
		if rep.Untrusted(i) != (wantOOD[i] || wantUnc[i]) {
			t.Errorf("row %d Untrusted = %v", i, rep.Untrusted(i))
		}
	}
	if !rep.AnyUntrusted() {
		t.Error("AnyUntrusted must see the rejections")
	}
	if len(rep.Variance) != 3 || rep.Variance[1] != 7.0 {
		t.Errorf("report variance = %v", rep.Variance)
	}

	// Ungated, the same wrapper reports nothing.
	bare := hpacml.NewFallbackEngine(&constEngine{val: 2, outDim: 1})
	if err := bare.Infer(t.Context(), in, out); err != nil {
		t.Fatal(err)
	}
	if bare.TrustReport() != nil {
		t.Error("ungated engine must not report trust verdicts")
	}

	// Warmup rejects a variance gate over a variance-blind primary.
	blind := hpacml.NewFallbackEngine(&constEngine{outDim: 1})
	blind.MaxVariance = 1
	if err := blind.Warmup(t.Context(), in.Shape()); err == nil {
		t.Error("variance gate over a variance-blind engine must fail Warmup")
	}
}

// trustStub builds a 2-in 1-out region around the given gated engine.
func trustStub(t *testing.T, eng hpacml.Engine, x, y []float64, extra ...hpacml.Option) *hpacml.Region {
	t.Helper()
	opts := append([]hpacml.Option{
		hpacml.Directives(`
tensor functor(vin: [i, 0:2] = ([0:2]))
tensor functor(vout: [i, 0:1] = ([0:1]))
tensor map(to: vin(x[0:1]))
tensor map(from: vout(y[0:1]))
ml(infer) in(x) out(y)
`),
		hpacml.BindArray("x", x, 2),
		hpacml.BindArray("y", y, 1),
		hpacml.WithEngine(eng),
	}, extra...)
	r, err := hpacml.NewRegion("stub", opts...)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

// TestExecuteRoutesUntrustedInvocation: a single Execute whose row is
// rejected discards the surrogate output, runs the accurate closure,
// and counts the rejection; a trusted row keeps the surrogate output.
func TestExecuteRoutesUntrustedInvocation(t *testing.T) {
	x := []float64{0.5, 0.5}
	y := []float64{0}
	eng := &varianceEngine{constEngine: constEngine{val: 7, outDim: 1}, rowVar: []float64{0.1}}
	r := trustStub(t, eng, x, y, hpacml.WithTrust(hpacml.TrustConfig{MaxVariance: 1}))
	defer r.Close()
	accurate := func() error { y[0] = 42; return nil }

	// Low variance: surrogate kept.
	if err := r.Execute(accurate); err != nil {
		t.Fatal(err)
	}
	if y[0] != 7 {
		t.Fatalf("trusted invocation y = %v, want surrogate 7", y[0])
	}

	// High variance: routed to the accurate path.
	eng.rowVar[0] = 9
	if err := r.Execute(accurate); err != nil {
		t.Fatal(err)
	}
	if y[0] != 42 {
		t.Fatalf("untrusted invocation y = %v, want accurate 42", y[0])
	}

	st := r.Stats()
	if st.TrustedRows != 1 || st.UncertainRows != 1 || st.OutOfDomainRows != 0 {
		t.Fatalf("counters = %+v", st)
	}
	if st.AccurateRuns != 1 || st.Inferences != 1 {
		t.Fatalf("routing accounting = %+v", st)
	}
}

// TestExecuteAdvisoryGateWithoutAccurate: with no accurate path the
// gate cannot route, so the surrogate output is kept — but the
// counters still record the low-trust row.
func TestExecuteAdvisoryGateWithoutAccurate(t *testing.T) {
	x := []float64{0.5, 0.5}
	y := []float64{0}
	eng := &varianceEngine{constEngine: constEngine{val: 7, outDim: 1}, rowVar: []float64{9}}
	r := trustStub(t, eng, x, y, hpacml.WithTrust(hpacml.TrustConfig{MaxVariance: 1}))
	defer r.Close()
	if err := r.Execute(nil); err != nil {
		t.Fatal(err)
	}
	if y[0] != 7 {
		t.Fatalf("advisory gate y = %v, want surrogate 7 kept", y[0])
	}
	st := r.Stats()
	if st.UncertainRows != 1 || st.TrustedRows != 0 || st.AccurateRuns != 0 {
		t.Fatalf("advisory counters = %+v", st)
	}
}

// TestDomainVerdictWins: a row rejected by both gates counts once, as
// out-of-domain — the stronger verdict.
func TestDomainVerdictWins(t *testing.T) {
	x := []float64{9, 9} // outside the envelope below
	y := []float64{0}
	fb := hpacml.NewFallbackEngine(&varianceEngine{
		constEngine: constEngine{val: 7, outDim: 1},
		rowVar:      []float64{9}, // also above the threshold
	})
	fb.MaxVariance = 1
	fb.Guardrail = &hpacml.Guardrail{Lo: []float64{0, 0}, Hi: []float64{1, 1}}
	r := trustStub(t, fb, x, y)
	defer r.Close()
	if err := r.Execute(func() error { y[0] = 42; return nil }); err != nil {
		t.Fatal(err)
	}
	st := r.Stats()
	if st.OutOfDomainRows != 1 || st.UncertainRows != 0 {
		t.Fatalf("both-gates row must count once as out-of-domain: %+v", st)
	}
	if y[0] != 42 {
		t.Fatalf("both-gates invocation y = %v, want accurate 42", y[0])
	}
}

// TestGuardrailFitValidation pins the fit-time error cases and the
// quantile envelope itself.
func TestGuardrailFitValidation(t *testing.T) {
	if _, err := hpacml.FitGuardrail(nil, 0); err == nil {
		t.Error("nil tensor must be rejected")
	}
	x, _ := tensor.FromSlice([]float64{1, 2, 3, 4}, 2, 2)
	if _, err := hpacml.FitGuardrail(x, 0.5); err == nil {
		t.Error("quantile 0.5 must be rejected")
	}
	if _, err := hpacml.FitGuardrail(x, -0.1); err == nil {
		t.Error("negative quantile must be rejected")
	}
	nan, _ := tensor.FromSlice([]float64{math.NaN(), 1, math.NaN(), 2}, 2, 2)
	if _, err := hpacml.FitGuardrail(nan, 0); err == nil {
		t.Error("an all-NaN feature must be rejected")
	}

	// q=0 fits the min/max envelope; NaNs in a feature are skipped, not
	// propagated into the bounds.
	mixed, _ := tensor.FromSlice([]float64{0, 5, 1, 6, math.NaN(), 7}, 3, 2)
	g, err := hpacml.FitGuardrail(mixed, 0)
	if err != nil {
		t.Fatal(err)
	}
	if g.Lo[0] != 0 || g.Hi[0] != 1 || g.Lo[1] != 5 || g.Hi[1] != 7 {
		t.Fatalf("min/max envelope = [%v %v] [%v %v]", g.Lo[0], g.Hi[0], g.Lo[1], g.Hi[1])
	}
	if g.CheckRow([]float64{0.5, 6}) != true || g.CheckRow([]float64{2, 6}) != false {
		t.Fatal("envelope verdicts wrong")
	}
}

// TestGuardrailCheckValidation pins the batch Check error cases.
func TestGuardrailCheckValidation(t *testing.T) {
	g := &hpacml.Guardrail{Lo: []float64{0}, Hi: []float64{1}}
	x, _ := tensor.FromSlice([]float64{0.5, 2}, 2, 1)
	if _, err := g.Check(x, make([]bool, 1)); err == nil {
		t.Error("verdict-slot mismatch must be rejected")
	}
	wide, _ := tensor.FromSlice([]float64{1, 2, 3, 4}, 2, 2)
	if _, err := g.Check(wide, make([]bool, 2)); err == nil {
		t.Error("feature-count mismatch must be rejected")
	}
	ood := make([]bool, 2)
	n, err := g.Check(x, ood)
	if err != nil || n != 1 || ood[0] || !ood[1] {
		t.Fatalf("check = %d, %v, verdicts %v", n, err, ood)
	}
}

// TestGuardrailSidecarDecodeErrors pins the sidecar's corruption
// handling: wrong magic, wrong version, and inverted bounds all fail.
func TestGuardrailSidecarDecodeErrors(t *testing.T) {
	dir := t.TempDir()
	good := &hpacml.Guardrail{Lo: []float64{0}, Hi: []float64{1}}
	path := filepath.Join(dir, "g.guard")
	if err := good.Save(path); err != nil {
		t.Fatal(err)
	}
	if _, err := hpacml.LoadGuardrail(path); err != nil {
		t.Fatal(err)
	}
	if _, err := hpacml.LoadGuardrail(filepath.Join(dir, "missing.guard")); err == nil {
		t.Error("missing sidecar must fail")
	}
	bad := &hpacml.Guardrail{Lo: []float64{2}, Hi: []float64{1}}
	if err := bad.Save(filepath.Join(dir, "bad.guard")); err == nil {
		if _, err := hpacml.LoadGuardrail(filepath.Join(dir, "bad.guard")); err == nil {
			t.Error("inverted bounds must fail decode")
		}
	}
	empty := &hpacml.Guardrail{}
	if err := empty.Save(filepath.Join(dir, "empty.guard")); err == nil {
		t.Error("encoding an empty guardrail must fail")
	}
}
