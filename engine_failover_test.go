// Failover test for trust-routed execution against a flapping remote
// backend: several goroutines drive routed batches while the serve
// process is killed and restarted under them. The fallback policy must
// degrade every failed batch to the accurate path — no invocation may
// ever be lost — and the per-region counters must add up exactly.
// Run with -race: the point is concurrent regions sharing one backend.
package hpacml_test

import (
	"context"
	"fmt"
	"math"
	"net"
	"net/http"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	hpacml "repro"

	"repro/internal/serve"
)

// flappingServe hosts a serve handler on a fixed address so it can be
// killed and rebound mid-test, simulating a surrogate server crash and
// restart under live traffic.
type flappingServe struct {
	t       *testing.T
	addr    string
	handler http.Handler
	mu      sync.Mutex
	hs      *http.Server
}

func newFlappingServe(t *testing.T, modelPath string) *flappingServe {
	t.Helper()
	srv, err := serve.NewServer(serve.Config{MaxBatch: 8, Workers: 2},
		serve.ModelSpec{Name: "vec", Path: modelPath})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	f := &flappingServe{t: t, addr: ln.Addr().String(), handler: serve.NewHandler(srv)}
	f.serveOn(ln)
	t.Cleanup(f.kill)
	return f
}

func (f *flappingServe) serveOn(ln net.Listener) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.hs = &http.Server{Handler: f.handler}
	go f.hs.Serve(ln)
}

// kill closes the listener and every live connection, so in-flight
// requests fail the way a crashed process would make them fail.
func (f *flappingServe) kill() {
	f.mu.Lock()
	hs := f.hs
	f.hs = nil
	f.mu.Unlock()
	if hs != nil {
		hs.Close()
	}
}

// restart rebinds the original address. The port can linger briefly
// after the kill, so binding retries.
func (f *flappingServe) restart() {
	deadline := time.Now().Add(10 * time.Second)
	for {
		ln, err := net.Listen("tcp", f.addr)
		if err == nil {
			f.serveOn(ln)
			return
		}
		if time.Now().After(deadline) {
			f.t.Errorf("restart: cannot rebind %s: %v", f.addr, err)
			return
		}
		time.Sleep(time.Millisecond)
	}
}

// TestRoutedFailoverFlappingServer kills and restarts the surrogate
// server while concurrent regions execute routed batches against it.
// Verified invariants, per region and in aggregate:
//
//   - every staged invocation produces exactly one finished result
//     (surrogate or accurate), even across the crash;
//   - Invocations == staged, BatchedInvocations + Fallbacks ==
//     Invocations, AccurateRuns == Fallbacks (no trust gate, so the
//     only accurate runs are engine-failure degrades);
//   - TrustedRows == BatchedInvocations (one row per invocation;
//     ungated surrogate rows count as trusted);
//   - all three phases actually happened: surrogate service before the
//     crash, fallbacks during it, surrogate service again after the
//     restart.
func TestRoutedFailoverFlappingServer(t *testing.T) {
	hpacml.ClearModelCache()
	const (
		workers  = 4
		batch    = 4
		inDim    = 3
		outDim   = 1
		maxIters = 5000
	)
	dir := t.TempDir()
	flap := newFlappingServe(t, saveVectorNet(t, dir, 61, inDim, outDim))
	modelRef := "http://" + flap.addr + "/vec"

	// Progress observed by the flapper; phase 0 = pre-crash, 1 = down,
	// 2 = restarted. Workers run until stop.
	var surrogateRows, fallbackRows, stop atomic.Int64

	type workerState struct {
		region *hpacml.Region
		x, y   []float64
		rows   int64 // finished invocations, surrogate or accurate
		staged int64
		err    error
	}
	states := make([]*workerState, workers)
	for w := range states {
		ws := &workerState{x: make([]float64, inDim), y: make([]float64, outDim)}
		ws.region = vectorRegion(t, fmt.Sprintf("flap-%d", w), modelRef, ws.x, ws.y)
		defer ws.region.Close()
		states[w] = ws
	}

	var wg sync.WaitGroup
	for w := range states {
		wg.Add(1)
		go func(w int, ws *workerState) {
			defer wg.Done()
			prev := ws.region.Stats()
			for iter := 0; iter < maxIters && stop.Load() == 0; iter++ {
				stage := func(i int) error {
					ws.staged++
					for j := range ws.x {
						ws.x[j] = float64(w) + float64(iter*batch+i)/1e4
					}
					ws.y[0] = math.NaN()
					return nil
				}
				accurate := func(i int) error { ws.y[0] = 42; return nil }
				finish := func(i int) error {
					if math.IsNaN(ws.y[0]) {
						return fmt.Errorf("worker %d iter %d invocation %d finished with no result", w, iter, i)
					}
					ws.rows++
					return nil
				}
				if err := ws.region.ExecuteBatchRouted(context.Background(), batch, stage, accurate, finish); err != nil {
					ws.err = err
					return
				}
				st := ws.region.Stats()
				surrogateRows.Add(int64(st.BatchedInvocations - prev.BatchedInvocations))
				fallbackRows.Add(int64(st.Fallbacks - prev.Fallbacks))
				prev = st
			}
		}(w, states[w])
	}

	// The flapper advances on observed worker progress, so every phase
	// is guaranteed to have really happened before the next begins.
	waitFor := func(what string, cond func() bool) bool {
		deadline := time.Now().Add(30 * time.Second)
		for !cond() {
			if time.Now().After(deadline) {
				t.Errorf("timed out waiting for %s", what)
				stop.Store(1)
				return false
			}
			time.Sleep(time.Millisecond)
		}
		return true
	}
	var flapWG sync.WaitGroup
	flapWG.Add(1)
	go func() {
		defer flapWG.Done()
		defer stop.Store(1)
		if !waitFor("surrogate service before the crash", func() bool { return surrogateRows.Load() > 0 }) {
			return
		}
		flap.kill()
		fellBackAt := fallbackRows.Load()
		if !waitFor("fallbacks while the server is down", func() bool { return fallbackRows.Load() > fellBackAt }) {
			return
		}
		flap.restart()
		servedAt := surrogateRows.Load()
		waitFor("surrogate service after the restart", func() bool { return surrogateRows.Load() > servedAt })
	}()
	flapWG.Wait()
	wg.Wait()

	var totalRows, totalStaged int64
	for w, ws := range states {
		if ws.err != nil {
			t.Fatalf("worker %d: routed batch must never fail over a flapping backend: %v", w, ws.err)
		}
		st := ws.region.Stats()
		if st.BatchedInvocations+st.Fallbacks != st.Invocations {
			t.Errorf("worker %d: %d batched + %d fallbacks != %d invocations", w, st.BatchedInvocations, st.Fallbacks, st.Invocations)
		}
		if st.AccurateRuns != st.Fallbacks {
			t.Errorf("worker %d: %d accurate runs != %d fallbacks (no trust gate is configured)", w, st.AccurateRuns, st.Fallbacks)
		}
		if st.TrustedRows != st.BatchedInvocations {
			t.Errorf("worker %d: %d trusted rows != %d surrogate-served invocations", w, st.TrustedRows, st.BatchedInvocations)
		}
		if st.UncertainRows != 0 || st.OutOfDomainRows != 0 {
			t.Errorf("worker %d: ungated region counted gate rejections: %+v", w, st)
		}
		if int64(st.Invocations) != ws.rows {
			t.Errorf("worker %d: finished %d invocations but stats count %d — a row was lost or double-served", w, ws.rows, st.Invocations)
		}
		totalRows += ws.rows
		totalStaged += ws.staged
	}
	if surrogateRows.Load() == 0 || fallbackRows.Load() == 0 {
		t.Fatalf("flap did not exercise both paths: surrogate=%d fallback=%d", surrogateRows.Load(), fallbackRows.Load())
	}
	if totalRows == 0 {
		t.Fatal("no invocations completed")
	}
	t.Logf("finished %d invocations across %d workers: %d surrogate, %d fallback (staged %d)",
		totalRows, workers, surrogateRows.Load(), fallbackRows.Load(), totalStaged)
}
