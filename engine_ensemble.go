package hpacml

import (
	"context"
	"fmt"
	"io"
	"math"

	"repro/internal/nn"
	"repro/internal/tensor"
)

// VarianceReporter is implemented by engines that measure per-row
// predictive variance while inferring — the confidence score the
// trust gate (FallbackEngine.MaxVariance) consumes. The returned slice
// is indexed by input row, valid until the engine's next Infer call.
type VarianceReporter interface{ RowVariance() []float64 }

// EnsembleEngine runs a deep ensemble: N member engines — typically N
// local models of the same architecture trained with different seeds —
// each predict the whole batch, the member mean is written out as the
// prediction, and the spread across members becomes the per-row
// predictive variance (population variance per output feature,
// averaged over the row's features). Disagreement between members is
// the uncertainty signal: where the training data constrained all
// members, they agree; where the surrogate would be extrapolating,
// they drift apart.
//
// The engine implements VarianceReporter, so wrapping it in a
// FallbackEngine with MaxVariance set (or annotating the region with
// trust(var:V)) turns the variance into a per-row routing decision.
// Like every engine it is driven from one goroutine at a time; it owns
// its members (Close closes them).
type EnsembleEngine struct {
	members []Engine

	// locals is the fast path: when every member is a LocalEngine the
	// batch runs through nn.ForwardEnsembleInto, sharing one scratch
	// accumulator instead of a tensor round-trip per member.
	locals []*LocalEngine
	nets   []*nn.Network
	scr    nn.EnsembleScratch

	// Generic-path scratch: one member-output tensor plus accumulators.
	memberOut  *tensor.Tensor
	sum, sumSq []float64

	rowVar []float64
}

// NewEnsembleEngine builds an ensemble over the given member engines
// (at least one), taking ownership of them. All members must agree on
// the model's input/output shapes; the mismatch surfaces in
// OutputShape/Warmup.
func NewEnsembleEngine(members ...Engine) (*EnsembleEngine, error) {
	if len(members) == 0 {
		return nil, fmt.Errorf("hpacml: ensemble engine needs at least one member")
	}
	e := &EnsembleEngine{members: members}
	e.locals = make([]*LocalEngine, len(members))
	for i, m := range members {
		if m == nil {
			return nil, fmt.Errorf("hpacml: ensemble member %d is nil", i)
		}
		le, ok := m.(*LocalEngine)
		if !ok {
			e.locals = nil
			break
		}
		e.locals[i] = le
	}
	return e, nil
}

// NewLocalEnsemble builds an ensemble of LocalEngines, one per .gmod
// path — the common "same architecture, different training seeds"
// deployment.
func NewLocalEnsemble(paths ...string) (*EnsembleEngine, error) {
	members := make([]Engine, len(paths))
	for i, p := range paths {
		members[i] = NewLocalEngine(p)
	}
	return NewEnsembleEngine(members...)
}

// Size returns the member count.
func (e *EnsembleEngine) Size() int { return len(e.members) }

// Members returns the member engines (shared, not copied).
func (e *EnsembleEngine) Members() []Engine { return e.members }

// Warmup warms every member and cross-validates their output shapes
// against the region's input shape.
func (e *EnsembleEngine) Warmup(ctx context.Context, inShape []int) error {
	for i, m := range e.members {
		if err := m.Warmup(ctx, inShape); err != nil {
			return fmt.Errorf("hpacml: ensemble member %d: %w", i, err)
		}
	}
	if len(inShape) > 0 {
		if _, err := e.OutputShape(inShape); err != nil {
			return err
		}
	}
	return nil
}

// OutputShape maps the input shape through member 0 and checks every
// other member agrees — disagreeing members would silently corrupt the
// mean and variance.
func (e *EnsembleEngine) OutputShape(in []int) ([]int, error) {
	shape, err := e.members[0].OutputShape(in)
	if err != nil {
		return nil, fmt.Errorf("hpacml: ensemble member 0: %w", err)
	}
	for i, m := range e.members[1:] {
		s, err := m.OutputShape(in)
		if err != nil {
			return nil, fmt.Errorf("hpacml: ensemble member %d: %w", i+1, err)
		}
		if !tensor.ShapeEqual(s, shape) {
			return nil, fmt.Errorf("hpacml: ensemble member %d output shape %v != member 0's %v", i+1, s, shape)
		}
	}
	return shape, nil
}

// Infer predicts the batch with every member, writes the member mean
// into out, and records per-row predictive variance for RowVariance.
func (e *EnsembleEngine) Infer(ctx context.Context, in, out *tensor.Tensor) error {
	rows := 1
	if out.Rank() >= 1 {
		rows = out.Dim(0)
	}
	if cap(e.rowVar) < rows {
		e.rowVar = make([]float64, rows)
	}
	e.rowVar = e.rowVar[:rows]
	if e.locals != nil && out.Rank() == 2 {
		return e.localInfer(ctx, in, out)
	}
	return e.genericInfer(ctx, in, out)
}

// localInfer is the all-local fast path: resolve member networks and
// run the variance-aware batched forward over the model slots.
func (e *EnsembleEngine) localInfer(ctx context.Context, in, out *tensor.Tensor) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	if cap(e.nets) < len(e.locals) {
		e.nets = make([]*nn.Network, len(e.locals))
	}
	e.nets = e.nets[:len(e.locals)]
	for i, le := range e.locals {
		if le.Network() == nil {
			if err := le.Warmup(ctx, nil); err != nil {
				return fmt.Errorf("hpacml: ensemble member %d: %w", i, err)
			}
		}
		e.nets[i] = le.Network()
	}
	return nn.ForwardEnsembleInto(e.nets, out, in, e.rowVar, &e.scr)
}

// genericInfer runs each member through the Engine interface —
// required for mixed or remote members and for non-rank-2 outputs —
// accumulating mean and variance in the engine's own scratch.
func (e *EnsembleEngine) genericInfer(ctx context.Context, in, out *tensor.Tensor) error {
	n := out.Len()
	rows := len(e.rowVar)
	features := 0
	if rows > 0 {
		features = n / rows
	}
	if e.memberOut == nil || !tensor.ShapeEqual(e.memberOut.Shape(), out.Shape()) {
		e.memberOut = tensor.New(out.Shape()...)
	}
	if cap(e.sum) < n {
		e.sum = make([]float64, n)
		e.sumSq = make([]float64, n)
	}
	sum, sumSq := e.sum[:n], e.sumSq[:n]
	for i := range sum {
		sum[i], sumSq[i] = 0, 0
	}
	for mi, m := range e.members {
		if err := m.Infer(ctx, in, e.memberOut); err != nil {
			return fmt.Errorf("hpacml: ensemble member %d: %w", mi, err)
		}
		for i, v := range e.memberOut.Contiguous().Data() {
			sum[i] += v
			sumSq[i] += v * v
		}
	}
	mf := float64(len(e.members))
	od := out.Data()
	for i := range od {
		od[i] = sum[i] / mf
	}
	for r := 0; r < rows; r++ {
		var acc float64
		for c := 0; c < features; c++ {
			i := r*features + c
			mean := sum[i] / mf
			v := sumSq[i]/mf - mean*mean
			// A member that emitted NaN (or overflowed) makes the feature
			// variance non-finite; the row must read as maximally
			// uncertain, never as zero variance.
			if math.IsNaN(v) || math.IsInf(v, 1) {
				acc = math.Inf(1)
				break
			}
			if v > 0 {
				acc += v
			}
		}
		if features > 0 {
			acc /= float64(features)
		}
		if math.IsNaN(acc) {
			acc = math.Inf(1)
		}
		e.rowVar[r] = acc
	}
	return nil
}

// RowVariance returns the last Infer call's per-row predictive
// variance, valid until the next Infer.
func (e *EnsembleEngine) RowVariance() []float64 { return e.rowVar }

// RemoteExecution reports whether any member executes remotely.
func (e *EnsembleEngine) RemoteExecution() bool {
	for _, m := range e.members {
		if isRemote(m) {
			return true
		}
	}
	return false
}

// Refresh forwards to every member's refresh hook.
func (e *EnsembleEngine) Refresh() {
	for _, m := range e.members {
		if r, ok := m.(refresher); ok {
			r.Refresh()
		}
	}
}

// Invalidate forwards to every member's invalidate hook.
func (e *EnsembleEngine) Invalidate() {
	for _, m := range e.members {
		if inv, ok := m.(invalidator); ok {
			inv.Invalidate()
		}
	}
}

// Close releases every member the ensemble owns.
func (e *EnsembleEngine) Close() error {
	var first error
	for _, m := range e.members {
		if c, ok := m.(io.Closer); ok {
			if err := c.Close(); err != nil && first == nil {
				first = err
			}
		}
	}
	return first
}
