package hpacml

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"sync/atomic"
	"testing"

	"repro/internal/h5"
	"repro/internal/nn"
	"repro/internal/serveapi"
	"repro/internal/tensor"
)

// syncSink reproduces the seed-era inline writer exactly: every capture
// is appended and flushed synchronously to a single file. It exists so
// the equivalence test can compare the asynchronous sharded pipeline
// against the old behavior byte for byte.
type syncSink struct {
	w *h5.Writer
}

func newSyncSink(t *testing.T, path string) *syncSink {
	t.Helper()
	w, err := h5.Append(path)
	if err != nil {
		t.Fatal(err)
	}
	return &syncSink{w: w}
}

func (s *syncSink) Capture(rec *CaptureRecord) error {
	if err := s.w.Write(rec.Region, "inputs", rec.Inputs); err != nil {
		return err
	}
	if err := s.w.Write(rec.Region, "outputs", rec.Outputs); err != nil {
		return err
	}
	if err := s.w.WriteScalar(rec.Region, "runtime_ns", rec.RuntimeNS); err != nil {
		return err
	}
	return s.w.Flush()
}

func (s *syncSink) Flush() error { return s.w.Flush() }
func (s *syncSink) Close() error { return s.w.Close() }

// collectStencil runs `steps` deterministic collection invocations of
// the Figure 2 stencil region built with the given extra options.
func collectStencil(t *testing.T, steps int, db string, extra ...Option) *Region {
	t.Helper()
	const N, M = 8, 9
	grid := make([]float64, N*M)
	gridNew := make([]float64, N*M)
	for i := range grid {
		grid[i] = float64(i%7) * 0.31
	}
	useModel := false
	opts := append([]Option{
		Directives(stencilDirectives("", db)),
		BindInt("N", N), BindInt("M", M),
		BindArray("t", grid, N, M),
		BindArray("tnew", gridNew, N, M),
		BindPredicate("useModel", func() bool { return useModel }),
	}, extra...)
	r, err := NewRegion("stencil", opts...)
	if err != nil {
		t.Fatal(err)
	}
	for s := 0; s < steps; s++ {
		if err := r.Execute(func() error { jacobiStep(grid, gridNew, N, M); return nil }); err != nil {
			t.Fatalf("collect step %d: %v", s, err)
		}
		copy(grid, gridNew)
	}
	return r
}

// TestLocalSinkEquivalentToSyncWriter is the tentpole acceptance check:
// a collection run through the asynchronous sharded LocalSink produces
// training data byte-equivalent (same records, any shard split) to the
// old synchronous single-file writer, verified by training on both
// databases and comparing the datasets and learned losses.
func TestLocalSinkEquivalentToSyncWriter(t *testing.T) {
	const steps = 12
	dir := t.TempDir()
	syncPath := filepath.Join(dir, "sync.gh5")
	asyncPath := filepath.Join(dir, "async.gh5")

	// Old path: synchronous single-file writer, injected.
	rSync := collectStencil(t, steps, syncPath, WithSink(newSyncSink(t, syncPath)))
	// New default path: async writer goroutine, rotated every 5 records.
	rAsync := collectStencil(t, steps, asyncPath,
		WithCapture(CaptureConfig{ShardRecords: 5, QueueCap: 4}))
	if err := rSync.Close(); err != nil {
		t.Fatal(err)
	}
	if err := rAsync.Close(); err != nil {
		t.Fatal(err)
	}
	if ss, ok := rAsync.CaptureStats(); !ok || ss.Captured != steps || ss.Dropped != 0 || ss.Shards < 2 {
		t.Fatalf("async capture stats: %+v (ok %v)", ss, ok)
	}

	fSync, err := h5.Open(syncPath)
	if err != nil {
		t.Fatal(err)
	}
	fAsync, err := h5.OpenShards(asyncPath)
	if err != nil {
		t.Fatal(err)
	}
	for _, ds := range []string{"inputs", "outputs", "runtime_ns"} {
		if a, b := fSync.NumRecords("stencil", ds), fAsync.NumRecords("stencil", ds); a != b || a != steps {
			t.Fatalf("%s records: sync %d, async %d, want %d", ds, a, b, steps)
		}
	}
	datasets := func(f *h5.File) *nn.Dataset {
		x, err := f.Read("stencil", "inputs")
		if err != nil {
			t.Fatal(err)
		}
		y, err := f.Read("stencil", "outputs")
		if err != nil {
			t.Fatal(err)
		}
		ds, err := nn.NewDataset(x, y)
		if err != nil {
			t.Fatal(err)
		}
		return ds
	}
	dsSync, dsAsync := datasets(fSync), datasets(fAsync)
	if dsSync.Len() != dsAsync.Len() {
		t.Fatalf("dataset sizes differ: %d vs %d", dsSync.Len(), dsAsync.Len())
	}
	for i, v := range dsSync.X.Contiguous().Data() {
		if dsAsync.X.Contiguous().Data()[i] != v {
			t.Fatalf("input element %d differs: %g vs %g", i, v, dsAsync.X.Contiguous().Data()[i])
		}
	}
	for i, v := range dsSync.Y.Contiguous().Data() {
		if dsAsync.Y.Contiguous().Data()[i] != v {
			t.Fatalf("output element %d differs: %g vs %g", i, v, dsAsync.Y.Contiguous().Data()[i])
		}
	}

	// Identical data + identical seed must learn identical surrogates.
	train := func(ds *nn.Dataset) float64 {
		net := nn.NewNetwork(17)
		net.Add(net.NewDense(5, 8), nn.NewActivation(nn.ActTanh), net.NewDense(8, 1))
		h, err := net.Fit(ds, nil, nn.TrainConfig{Epochs: 8, BatchSize: 16, LR: 0.01, Seed: 5})
		if err != nil {
			t.Fatal(err)
		}
		return h.BestVal
	}
	if a, b := train(dsSync), train(dsAsync); a != b {
		t.Fatalf("training diverged on equivalent datasets: %g vs %g", a, b)
	}
}

// TestSamplingSinkPolicies checks both capture(...) policies end to
// end: the every-N stride through the directive clause, and the
// frac policy through WithCapture override.
func TestSamplingSinkPolicies(t *testing.T) {
	dir := t.TempDir()

	t.Run("every via directive", func(t *testing.T) {
		db := filepath.Join(dir, "every.gh5")
		const N, M, steps = 6, 6, 10
		grid := make([]float64, N*M)
		gridNew := make([]float64, N*M)
		r, err := NewRegion("stencil",
			Directives(fmt.Sprintf(`
tensor functor(ifn: [i, j, 0:5] = (([i-1, j], [i+1, j], [i, j-1:j+2])))
tensor functor(ofn: [i, j, 0:1] = ([i, j]))
tensor map(to: ifn(t[1:N-1, 1:M-1]))
tensor map(from: ofn(tnew[1:N-1, 1:M-1]))
ml(collect) in(t) out(tnew) db(%q) capture(every:3)
`, db)),
			BindInt("N", N), BindInt("M", M),
			BindArray("t", grid, N, M),
			BindArray("tnew", gridNew, N, M),
		)
		if err != nil {
			t.Fatal(err)
		}
		for s := 0; s < steps; s++ {
			if err := r.Execute(func() error { jacobiStep(grid, gridNew, N, M); return nil }); err != nil {
				t.Fatal(err)
			}
		}
		if err := r.Close(); err != nil {
			t.Fatal(err)
		}
		// 10 invocations, keep 1, 4, 7, 10 -> 4 records.
		f, err := h5.OpenShards(db)
		if err != nil {
			t.Fatal(err)
		}
		if n := f.NumRecords("stencil", "inputs"); n != 4 {
			t.Fatalf("every:3 kept %d of %d, want 4", n, steps)
		}
		ss, ok := r.CaptureStats()
		if !ok || ss.Sampled != 6 || ss.Captured != 4 {
			t.Fatalf("sampling stats: %+v (ok %v)", ss, ok)
		}
	})

	t.Run("frac via WithCapture", func(t *testing.T) {
		db := filepath.Join(dir, "frac.gh5")
		const steps = 40
		r := collectStencil(t, steps, db, WithCapture(CaptureConfig{Frac: 0.5, Seed: 7}))
		if err := r.Close(); err != nil {
			t.Fatal(err)
		}
		ss, _ := r.CaptureStats()
		if ss.Captured+ss.Sampled != steps {
			t.Fatalf("captured %d + sampled %d != %d", ss.Captured, ss.Sampled, steps)
		}
		if ss.Captured == 0 || ss.Sampled == 0 {
			t.Fatalf("frac 0.5 over %d runs kept everything or nothing: %+v", steps, ss)
		}
		f, err := h5.OpenShards(db)
		if err != nil {
			t.Fatal(err)
		}
		if n := f.NumRecords("stencil", "inputs"); int64(n) != ss.Captured {
			t.Fatalf("database has %d records, stats say %d", n, ss.Captured)
		}
	})
}

// TestDropPolicyCountsInsteadOfBlocking pins the drop backpressure
// path: with a tiny queue and a stalled consumer the solver never
// blocks, and every lost record is counted.
func TestDropPolicyCountsInsteadOfBlocking(t *testing.T) {
	db := filepath.Join(t.TempDir(), "drop.gh5")
	// A 1-slot queue hammered by a tight producer loop overruns the
	// writer goroutine; whatever overflows must be counted, and
	// captured + dropped must account for every submission exactly.
	s, err := NewLocalSink(db, CaptureConfig{QueueCap: 1, DropWhenFull: true, FlushEvery: -1})
	if err != nil {
		t.Fatal(err)
	}
	rec := func(v float64) *CaptureRecord {
		in, _ := tensor.FromSlice([]float64{v}, 1, 1)
		out, _ := tensor.FromSlice([]float64{v}, 1, 1)
		return &CaptureRecord{Region: "r", Inputs: in, Outputs: out, RuntimeNS: v}
	}
	for i := 0; i < 200; i++ {
		if err := s.Capture(rec(float64(i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	ss := s.SinkStats()
	if ss.Captured+ss.Dropped != 200 {
		t.Fatalf("captured %d + dropped %d != 200", ss.Captured, ss.Dropped)
	}
	f, err := h5.OpenShards(db)
	if err != nil {
		t.Fatal(err)
	}
	if n := f.NumRecords("r", "inputs"); int64(n) != ss.Captured {
		t.Fatalf("database has %d records, stats say %d captured", n, ss.Captured)
	}
	if err := s.Capture(rec(1)); err != ErrSinkClosed {
		t.Fatalf("capture after close: %v, want ErrSinkClosed", err)
	}
}

// TestRemoteSinkDegradesGracefully drives a collection region against a
// fake ingest endpoint, then kills the server mid-run: records sent
// while it lived are acknowledged, records after its death are counted
// as drops/flush errors — and the solve itself never fails.
func TestRemoteSinkDegradesGracefully(t *testing.T) {
	var accepted atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/v1/capture" {
			http.NotFound(w, r)
			return
		}
		var req serveapi.CaptureRequest
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		accepted.Add(int64(len(req.Records)))
		fmt.Fprintf(w, `{"db":%q,"accepted":%d}`, req.DB, len(req.Records))
	}))

	db := srv.URL + "/stencil"
	const N, M = 6, 6
	grid := make([]float64, N*M)
	gridNew := make([]float64, N*M)
	r, err := NewRegion("stencil",
		Directives(stencilDirectives("", db)),
		BindInt("N", N), BindInt("M", M),
		BindArray("t", grid, N, M),
		BindArray("tnew", gridNew, N, M),
		BindPredicate("useModel", func() bool { return false }),
		WithCapture(CaptureConfig{BatchRecords: 2, DropWhenFull: true}),
	)
	if err != nil {
		t.Fatal(err)
	}
	step := func() error {
		return r.Execute(func() error { jacobiStep(grid, gridNew, N, M); return nil })
	}
	for i := 0; i < 4; i++ {
		if err := step(); err != nil {
			t.Fatalf("capture with live server: %v", err)
		}
	}
	if err := r.Flush(); err != nil {
		t.Fatalf("flush with live server: %v", err)
	}
	if got := accepted.Load(); got != 4 {
		t.Fatalf("server accepted %d records, want 4", got)
	}

	srv.Close() // the ingest endpoint dies mid-run
	for i := 0; i < 3; i++ {
		if err := step(); err != nil {
			t.Fatalf("solver must not fail when ingest is down: %v", err)
		}
	}
	if err := r.Flush(); err == nil {
		t.Fatal("flush barrier must surface the ingest failure")
	}
	if err := r.Close(); err != nil {
		// A second failed batch may surface here; either way the close
		// itself must not panic or hang. Only unexpected success is wrong.
		t.Logf("close reported (expected) ingest failure: %v", err)
	}
	ss, ok := r.CaptureStats()
	if !ok {
		t.Fatal("no capture stats")
	}
	if ss.RemoteRecords != 4 {
		t.Fatalf("remote records = %d, want 4", ss.RemoteRecords)
	}
	if ss.Dropped != 3 || ss.FlushErrors == 0 {
		t.Fatalf("dead-server accounting: %+v", ss)
	}
	st := r.Stats()
	if st.RemoteCaptures != 4 || st.CaptureDrops != 3 {
		t.Fatalf("region stats did not fold sink counters: %+v", st)
	}
}

// TestResetStatsBaselinesCaptureCounters pins that ResetStats applies
// to the folded sink counters like every other Stats field: a reset
// between phases must not re-attribute earlier capture activity.
func TestResetStatsBaselinesCaptureCounters(t *testing.T) {
	db := filepath.Join(t.TempDir(), "reset.gh5")
	r := collectStencil(t, 5, db)
	if err := r.Flush(); err != nil {
		t.Fatal(err)
	}
	if st := r.Stats(); st.CaptureFlushes == 0 {
		t.Fatalf("no capture flushes before reset: %+v", st)
	}
	r.ResetStats()
	if st := r.Stats(); st.CaptureFlushes != 0 || st.CaptureDrops != 0 || st.RemoteCaptures != 0 {
		t.Fatalf("capture counters survived ResetStats: %+v", st)
	}
	// New activity after the reset counts from zero.
	if err := r.Flush(); err != nil {
		t.Fatal(err)
	}
	if st := r.Stats(); st.CaptureFlushes != 1 {
		t.Fatalf("post-reset flushes = %d, want 1", st.CaptureFlushes)
	}
	// The sink's lifetime totals stay intact for the collect report.
	if ss, ok := r.CaptureStats(); !ok || ss.Captured != 5 || ss.Flushes < 2 {
		t.Fatalf("lifetime sink stats disturbed: %+v (ok %v)", ss, ok)
	}
	if err := r.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestCloseFlushesLazySinkOnErrorPath pins satellite guarantee: when
// the accurate closure errors mid-run, records captured by earlier
// invocations are still flushed and closed, never silently truncated.
func TestCloseFlushesLazySinkOnErrorPath(t *testing.T) {
	db := filepath.Join(t.TempDir(), "err.gh5")
	const N, M = 6, 6
	grid := make([]float64, N*M)
	gridNew := make([]float64, N*M)
	useModel := false
	r := newStencilRegion(t, grid, gridNew, N, M, &useModel, "", db)
	for i := 0; i < 3; i++ {
		if err := r.Execute(func() error { jacobiStep(grid, gridNew, N, M); return nil }); err != nil {
			t.Fatal(err)
		}
	}
	boom := fmt.Errorf("solver blew up")
	if err := r.Execute(func() error { return boom }); err != boom {
		t.Fatalf("accurate error not propagated: %v", err)
	}
	// No flush call — Close alone must drain the async pipeline.
	if err := r.Close(); err != nil {
		t.Fatal(err)
	}
	f, err := h5.OpenShards(db)
	if err != nil {
		t.Fatal(err)
	}
	for _, ds := range []string{"inputs", "outputs", "runtime_ns"} {
		if n := f.NumRecords("stencil", ds); n != 3 {
			t.Fatalf("%s records = %d, want 3 (no truncation on error paths)", ds, n)
		}
	}
}
