package hpacml

import (
	"fmt"
	"sync/atomic"
	"time"

	"repro/internal/h5"
)

// LocalSink is the default capture backend: an asynchronous writer
// goroutine appending records to a sharded local .gh5 database, so the
// solver's accurate path pays only an enqueue — not the serialization
// and I/O the old inline writer charged every invocation.
//
//   - Capture hands the record to the bounded queue (captureQueue).
//     When the queue is full the configured backpressure policy
//     applies: block (default; never loses data) or drop (never stalls
//     the solve; counted in SinkStats.Dropped).
//   - The writer goroutine drains the queue, appending each record's
//     inputs/outputs/runtime as one atomic set to the current shard
//     (h5.ShardWriter rotates to a fresh file every ShardRecords
//     invocations and recovers partial tails on resume).
//   - A periodic timer flushes buffered bytes to the OS, bounding how
//     much a crash can lose; Flush is a queue barrier that reports any
//     asynchronous write error.
//
// The sink is safe for concurrent Capture/Flush from many goroutines.
type LocalSink struct {
	captureQueue

	writeErrors atomic.Int64
	shards      atomic.Int64

	w *h5.ShardWriter
}

// NewLocalSink opens (or resumes, with crash recovery) the sharded
// database at path and starts the writer goroutine. Open failures
// surface here, synchronously — exactly where the old inline writer
// reported them.
func NewLocalSink(path string, cfg CaptureConfig) (*LocalSink, error) {
	if path == "" {
		return nil, fmt.Errorf("hpacml: local sink needs a database path")
	}
	cfg = cfg.withDefaults()
	w, err := h5.NewShardWriter(path, cfg.ShardRecords, h5.SampleRecords)
	if err != nil {
		return nil, err
	}
	s := &LocalSink{w: w}
	s.initQueue(cfg.QueueCap, cfg.DropWhenFull)
	s.shards.Store(int64(w.Shards()))
	go s.run(cfg.FlushEvery)
	return s, nil
}

// run is the writer goroutine: drain records, serve flush barriers,
// flush periodically, and on queue close flush-and-close the shards.
func (s *LocalSink) run(flushEvery time.Duration) {
	defer close(s.done)
	var tickC <-chan time.Time
	if flushEvery > 0 {
		tick := time.NewTicker(flushEvery)
		tickC = tick.C
		defer tick.Stop()
	}
	for {
		select {
		case m, ok := <-s.queue:
			if !ok {
				s.finish()
				return
			}
			if m.rec != nil {
				s.write(m.rec)
			}
			if m.ack != nil {
				m.ack <- s.flushNow()
			}
		case <-tickC:
			s.periodicFlush()
		}
	}
}

// periodicFlush is the timer path: flush the shard and record any
// failure, but never consume the sticky error — only barriers
// (Flush/Close) report-and-clear it, so a failure between barriers is
// never silently absorbed by the ticker.
func (s *LocalSink) periodicFlush() {
	if err := s.w.Flush(); err != nil {
		s.setErr(err)
		s.flushErrors.Add(1)
		return
	}
	s.flushes.Add(1)
}

// write appends one record set to the current shard.
func (s *LocalSink) write(rec *CaptureRecord) {
	w, err := s.w.BeginSet()
	if err == nil {
		err = h5.AppendSample(w, rec.Region, rec.Inputs, rec.Outputs, rec.RuntimeNS)
	}
	s.shards.Store(int64(s.w.Shards()))
	if err != nil {
		s.writeErrors.Add(1)
		s.setErr(err)
	}
}

// flushNow flushes the current shard and returns the sticky error
// state (a past write failure is a flush failure: the barrier promises
// durability of everything before it).
func (s *LocalSink) flushNow() error {
	err := s.w.Flush()
	if err != nil {
		s.setErr(err)
	}
	if err = s.takeErr(err); err != nil {
		s.flushErrors.Add(1)
		return err
	}
	s.flushes.Add(1)
	return nil
}

// finish is the close path of the writer goroutine.
func (s *LocalSink) finish() {
	if err := s.w.Close(); err != nil {
		s.setErr(err)
		s.flushErrors.Add(1)
		return
	}
	s.flushes.Add(1)
}

// Close drains the queue, flushes, and closes the shard files. Later
// Capture calls fail with ErrSinkClosed; Close is idempotent.
func (s *LocalSink) Close() error { return s.shutdown() }

// SinkStats snapshots the sink's accounting.
func (s *LocalSink) SinkStats() SinkStats {
	st := s.queueStats()
	st.WriteErrors = s.writeErrors.Load()
	st.Shards = s.shards.Load()
	return st
}
