package hpacml

import (
	"context"
	"fmt"
	"sync/atomic"
	"time"

	"repro/internal/directive"
	"repro/internal/serveapi"
	"repro/internal/serveclient"
)

// RemoteSink ships capture records to a running hpacml-serve ingest
// endpoint (/v1/capture) through the typed pooled client, so many
// distributed solver ranks feed one server-owned training database. A
// region selects it by writing an http(s):// URI in its db() clause —
//
//	ml(collect) in(x) out(y) db("http://head-node:8080/binomial")
//
// — where the URI's last path segment is the capture database the
// server registered and the rest is the server base URL, the same
// grammar the model() clause uses for remote inference.
//
// Records accumulate on a shipper goroutine and travel in batches of
// BatchRecords per POST (or whatever has accumulated when the periodic
// flush fires). The sink degrades gracefully when the server dies
// mid-run: the solve never fails — a failed batch is counted
// (FlushErrors, its unacknowledged records in Dropped, using the
// server-reported accepted prefix when one comes back) and collection
// continues, so a server restart resumes ingest with nothing corrupted
// on either side. Queue backpressure follows the same block-or-drop
// policy as LocalSink (captureQueue).
type RemoteSink struct {
	captureQueue

	client *serveclient.Client
	db     string
	batch  int

	remoteBatches atomic.Int64
	remoteRecords atomic.Int64
}

// DefaultCaptureTimeout bounds each ingest POST end-to-end, so a hung
// server degrades to counted drops instead of stalling the capture
// pipeline behind one request forever.
const DefaultCaptureTimeout = 30 * time.Second

// NewRemoteSink builds a remote capture sink from a db URI
// (http(s)://host[:port][/prefix...]/db-name).
func NewRemoteSink(uri string, cfg CaptureConfig) (*RemoteSink, error) {
	base, name, err := directive.SplitRemoteDB(uri)
	if err != nil {
		return nil, err
	}
	cfg = cfg.withDefaults()
	s := &RemoteSink{
		client: serveclient.New(base, serveclient.WithTimeout(DefaultCaptureTimeout),
			serveclient.WithWire(serveclient.WireBinary)),
		db:     name,
		batch:  cfg.BatchRecords,
	}
	s.initQueue(cfg.QueueCap, cfg.DropWhenFull)
	go s.run(cfg.FlushEvery)
	return s, nil
}

// DBName returns the registered capture-database name the sink targets.
func (s *RemoteSink) DBName() string { return s.db }

// run is the shipper goroutine: accumulate records, POST a batch when
// it reaches the batch size, a barrier demands it, the timer fires, or
// the queue closes.
func (s *RemoteSink) run(flushEvery time.Duration) {
	defer close(s.done)
	var tickC <-chan time.Time
	if flushEvery > 0 {
		tick := time.NewTicker(flushEvery)
		tickC = tick.C
		defer tick.Stop()
	}
	pending := make([]serveapi.CaptureRecord, 0, s.batch)
	for {
		select {
		case m, ok := <-s.queue:
			if !ok {
				s.ship(pending)
				return
			}
			if m.rec != nil {
				pending = append(pending, wireCapture(m.rec))
				if len(pending) >= s.batch {
					pending = s.ship(pending)
				}
			}
			if m.ack != nil {
				pending = s.ship(pending)
				m.ack <- s.takeErr(nil)
			}
		case <-tickC:
			pending = s.ship(pending)
		}
	}
}

// ship POSTs the pending batch, returning the (reset) pending slice.
// Failures never propagate to the solver: unacknowledged records are
// counted as dropped (the server's accepted prefix, reported even on
// error, is not) and collection moves on — the graceful-degradation
// contract.
func (s *RemoteSink) ship(pending []serveapi.CaptureRecord) []serveapi.CaptureRecord {
	if len(pending) == 0 {
		s.flushes.Add(1)
		return pending
	}
	n, err := s.client.Capture(context.Background(), s.db, pending)
	if err != nil {
		s.flushErrors.Add(1)
		s.dropped.Add(int64(len(pending) - n))
		s.remoteRecords.Add(int64(n))
		s.setErr(fmt.Errorf("hpacml: remote capture to %s db %q: %w", s.client.Base(), s.db, err))
	} else {
		s.flushes.Add(1)
		s.remoteBatches.Add(1)
		s.remoteRecords.Add(int64(n))
	}
	return pending[:0]
}

// wireCapture converts a runtime capture record to its wire form. The
// tensors are sink-owned, so the wire record aliases their storage.
func wireCapture(rec *CaptureRecord) serveapi.CaptureRecord {
	in := rec.Inputs.Contiguous()
	out := rec.Outputs.Contiguous()
	return serveapi.CaptureRecord{
		Region:      rec.Region,
		InputShape:  in.Shape(),
		Inputs:      in.Data(),
		OutputShape: out.Shape(),
		Outputs:     out.Data(),
		RuntimeNS:   rec.RuntimeNS,
	}
}

// Close ships the final batch and releases the client's pooled
// connections. Close is idempotent.
func (s *RemoteSink) Close() error {
	err := s.shutdown()
	s.client.CloseIdleConnections()
	return err
}

// SinkStats snapshots the sink's accounting.
func (s *RemoteSink) SinkStats() SinkStats {
	st := s.queueStats()
	st.RemoteBatches = s.remoteBatches.Load()
	st.RemoteRecords = s.remoteRecords.Load()
	return st
}
