package hpacml

import (
	"fmt"
	"path/filepath"
	"testing"

	"repro/internal/nn"
)

// optionRegion builds a binomial-style MLP inference region: three input
// parameter arrays gathered into a 3-feature tensor, one price array
// scattered back.
func optionRegion(t *testing.T, s, x, tt, prices []float64, modelPath string) *Region {
	t.Helper()
	n := len(prices)
	r, err := NewRegion("options",
		Directives(fmt.Sprintf(`
tensor functor(opt_in: [i, 0:3] = ([i]))
tensor functor(price_out: [i, 0:1] = ([i]))
tensor map(to: opt_in(S[0:NOPT], X[0:NOPT], T[0:NOPT]))
ml(infer) in(S, X, T) out(price_out(prices[0:NOPT])) model(%q)
`, modelPath)),
		BindInt("NOPT", n),
		BindArray("S", s, n),
		BindArray("X", x, n),
		BindArray("T", tt, n),
		BindArray("prices", prices, n),
	)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func saveMLP(t *testing.T, dir string, seed int64, widths ...int) string {
	t.Helper()
	net := nn.NewNetwork(seed)
	for i := 0; i < len(widths)-1; i++ {
		net.Add(net.NewDense(widths[i], widths[i+1]))
		if i < len(widths)-2 {
			net.Add(nn.NewActivation(nn.ActTanh))
		}
	}
	path := filepath.Join(dir, "m.gmod")
	if err := net.Save(path); err != nil {
		t.Fatal(err)
	}
	return path
}

// chunkInputs builds n distinct per-invocation input sets for a chunk of
// c options.
func chunkInputs(n, c int) (s, x, tt [][]float64) {
	s = make([][]float64, n)
	x = make([][]float64, n)
	tt = make([][]float64, n)
	for i := 0; i < n; i++ {
		s[i] = make([]float64, c)
		x[i] = make([]float64, c)
		tt[i] = make([]float64, c)
		for j := 0; j < c; j++ {
			s[i][j] = 5 + float64((i*31+j*7)%25)
			x[i][j] = 1 + float64((i*13+j*3)%99)
			tt[i][j] = 0.25 + float64((i+j)%39)*0.25
		}
	}
	return s, x, tt
}

// TestExecuteBatchBitIdentical is the core batching contract: ExecuteBatch
// over n invocations produces bit-identical outputs to n sequential
// Execute calls, and reusing the cached staging buffers on a second batch
// changes nothing.
func TestExecuteBatchBitIdentical(t *testing.T) {
	const nInvocations, chunk = 6, 32
	ClearModelCache()
	dir := t.TempDir()
	modelPath := saveMLP(t, dir, 21, 3, 16, 16, 1)

	s := make([]float64, chunk)
	x := make([]float64, chunk)
	tt := make([]float64, chunk)
	prices := make([]float64, chunk)
	r := optionRegion(t, s, x, tt, prices, modelPath)
	defer r.Close()

	sIn, xIn, tIn := chunkInputs(nInvocations, chunk)
	stage := func(i int) error {
		copy(s, sIn[i])
		copy(x, xIn[i])
		copy(tt, tIn[i])
		return nil
	}

	// Sequential reference.
	want := make([][]float64, nInvocations)
	for i := 0; i < nInvocations; i++ {
		if err := stage(i); err != nil {
			t.Fatal(err)
		}
		if err := r.Execute(nil); err != nil {
			t.Fatal(err)
		}
		want[i] = append([]float64(nil), prices...)
	}

	for round := 0; round < 2; round++ {
		got := make([][]float64, nInvocations)
		err := r.ExecuteBatch(nInvocations, stage, func(i int) error {
			got[i] = append([]float64(nil), prices...)
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		for i := range want {
			for j := range want[i] {
				if got[i][j] != want[i][j] {
					t.Fatalf("round %d: invocation %d option %d: batched %v, sequential %v",
						round, i, j, got[i][j], want[i][j])
				}
			}
		}
	}

	st := r.Stats()
	if st.Batches != 2 || st.BatchedInvocations != 2*nInvocations {
		t.Fatalf("batch counters: %+v", st)
	}
	if st.Invocations != nInvocations+2*nInvocations || st.Inferences != st.Invocations {
		t.Fatalf("invocation counters: %+v", st)
	}
	if st.BatchInference <= 0 {
		t.Fatalf("no batched inference time recorded: %+v", st)
	}
}

// TestExecuteBatchImageLayout checks batching through the CNN image
// layout: a 2-D sweep presented as [1, F, S0, S1] per invocation stacks
// to [n, F, S0, S1] and still matches sequential execution exactly.
func TestExecuteBatchImageLayout(t *testing.T) {
	const H, W = 6, 6
	const nInvocations = 4
	ClearModelCache()
	dir := t.TempDir()
	net := nn.NewNetwork(5)
	net.Add(net.NewConv2D(1, 2, 3, 3, 1), nn.NewActivation(nn.ActReLU),
		nn.NewFlatten(), net.NewDense(2*(H-2)*(W-2), H*W))
	modelPath := filepath.Join(dir, "cnn.gmod")
	if err := net.Save(modelPath); err != nil {
		t.Fatal(err)
	}

	grid := make([]float64, H*W)
	out := make([]float64, H*W)
	r, err := NewRegion("img",
		Directives(fmt.Sprintf(`
tensor functor(f: [i, j, 0:1] = ([i, j]))
tensor map(to: f(g[0:H, 0:W]))
tensor map(from: f(o[0:H, 0:W]))
ml(infer) in(g) out(o) model(%q)
`, modelPath)),
		BindInt("H", H), BindInt("W", W),
		BindArray("g", grid, H, W),
		BindArray("o", out, H, W),
		InputLayout(LayoutImage2D),
	)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()

	stage := func(i int) error {
		for j := range grid {
			grid[j] = float64((i*17 + j) % 11)
		}
		return nil
	}
	want := make([][]float64, nInvocations)
	for i := 0; i < nInvocations; i++ {
		if err := stage(i); err != nil {
			t.Fatal(err)
		}
		if err := r.Execute(nil); err != nil {
			t.Fatal(err)
		}
		want[i] = append([]float64(nil), out...)
	}
	got := make([][]float64, nInvocations)
	err = r.ExecuteBatch(nInvocations, stage, func(i int) error {
		got[i] = append([]float64(nil), out...)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		for j := range want[i] {
			if got[i][j] != want[i][j] {
				t.Fatalf("invocation %d cell %d: batched %v, sequential %v", i, j, got[i][j], want[i][j])
			}
		}
	}
}

func TestExecuteBatchRejectsNonInference(t *testing.T) {
	const N = 4
	dir := t.TempDir()
	r, err := NewRegion("collect",
		Directives(fmt.Sprintf(`
tensor functor(f: [i, 0:1] = ([i]))
tensor map(to: f(x[0:N]))
tensor map(from: f(x[0:N]))
ml(collect) inout(x) db(%q)
`, filepath.Join(dir, "d.gh5"))),
		BindInt("N", N),
		BindArray("x", make([]float64, N), N),
	)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if err := r.ExecuteBatch(2, nil, nil); err == nil {
		t.Fatal("want error: collection mode cannot batch")
	}

	// A predicated region whose predicate selects collection must refuse
	// too; flipping the predicate enables batching.
	ClearModelCache()
	modelPath := saveMLP(t, dir, 2, 1, 4, 1)
	useModel := false
	r2, err := NewRegion("pred",
		Directives(fmt.Sprintf(`
tensor functor(f: [i, 0:1] = ([i]))
tensor map(to: f(x[0:N]))
tensor map(from: f(x[0:N]))
ml(predicated:useModel) inout(x) model(%q) db(%q)
`, modelPath, filepath.Join(dir, "d2.gh5"))),
		BindInt("N", N),
		BindArray("x", make([]float64, N), N),
		BindPredicate("useModel", func() bool { return useModel }),
	)
	if err != nil {
		t.Fatal(err)
	}
	defer r2.Close()
	if err := r2.ExecuteBatch(2, nil, nil); err == nil {
		t.Fatal("want error: predicate selects collection")
	}
	useModel = true
	if err := r2.ExecuteBatch(2, nil, nil); err != nil {
		t.Fatal(err)
	}
}

func TestExecuteBatchEdgeCases(t *testing.T) {
	const N = 4
	ClearModelCache()
	dir := t.TempDir()
	modelPath := saveMLP(t, dir, 2, 1, 4, 1)
	x := make([]float64, N)
	r, err := NewRegion("edge",
		Directives(fmt.Sprintf(`
tensor functor(f: [i, 0:1] = ([i]))
tensor map(to: f(x[0:N]))
tensor map(from: f(x[0:N]))
ml(infer) inout(x) model(%q)
`, modelPath)),
		BindInt("N", N),
		BindArray("x", x, N),
	)
	if err != nil {
		t.Fatal(err)
	}

	// n <= 0 is a no-op.
	if err := r.ExecuteBatch(0, nil, nil); err != nil {
		t.Fatal(err)
	}
	if st := r.Stats(); st.Invocations != 0 {
		t.Fatalf("empty batch recorded invocations: %+v", st)
	}

	// Callback errors propagate with context.
	boom := fmt.Errorf("staging failed")
	if err := r.ExecuteBatch(2, func(int) error { return boom }, nil); err == nil {
		t.Fatal("want stage error")
	}

	// Varying batch sizes re-stage cleanly.
	for _, n := range []int{1, 3, 2} {
		if err := r.ExecuteBatch(n, nil, nil); err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
	}

	// Closed regions refuse.
	r.Close()
	if err := r.ExecuteBatch(1, nil, nil); err == nil {
		t.Fatal("want error after Close")
	}
}

// TestExecuteBatchAfterInvalidateModel exercises the model-dependent
// cache drop: invalidating reloads the model and rebuilds output buffers.
func TestExecuteBatchAfterInvalidateModel(t *testing.T) {
	const N = 4
	ClearModelCache()
	dir := t.TempDir()
	modelPath := saveMLP(t, dir, 2, 1, 4, 1)
	x := make([]float64, N)
	r, err := NewRegion("inv",
		Directives(fmt.Sprintf(`
tensor functor(f: [i, 0:1] = ([i]))
tensor map(to: f(x[0:N]))
tensor map(from: f(x[0:N]))
ml(infer) inout(x) model(%q)
`, modelPath)),
		BindInt("N", N),
		BindArray("x", x, N),
	)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	for i := range x {
		x[i] = float64(i + 1)
	}
	if err := r.ExecuteBatch(2, nil, nil); err != nil {
		t.Fatal(err)
	}
	first := append([]float64(nil), x...)

	// A different model at the same path must actually be used after
	// invalidation.
	net := nn.NewNetwork(77)
	net.Add(net.NewDense(1, 8), nn.NewActivation(nn.ActTanh), net.NewDense(8, 1))
	if err := net.Save(modelPath); err != nil {
		t.Fatal(err)
	}
	r.InvalidateModel()
	for i := range x {
		x[i] = first[i]
	}
	if err := r.ExecuteBatch(2, nil, nil); err != nil {
		t.Fatal(err)
	}
	same := true
	for i := range x {
		if x[i] != first[i] {
			same = false
		}
	}
	if same {
		t.Fatal("InvalidateModel did not take effect on the batched path")
	}
}
