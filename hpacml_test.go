package hpacml

import (
	"fmt"
	"math"
	"path/filepath"
	"testing"

	"repro/internal/h5"
	"repro/internal/nn"
	"repro/internal/tensor"
)

// jacobiStep is the accurate path of the Figure 2 example: a 5-point
// average over the interior of a 2-D grid.
func jacobiStep(t, tnew []float64, n, m int) {
	for i := 1; i < n-1; i++ {
		for j := 1; j < m-1; j++ {
			tnew[i*m+j] = (t[(i-1)*m+j] + t[(i+1)*m+j] + t[i*m+j-1] + t[i*m+j] + t[i*m+j+1]) / 5
		}
	}
}

func stencilDirectives(model, db string) string {
	return fmt.Sprintf(`
#pragma approx tensor functor(ifn: [i, j, 0:5] = (([i-1, j], [i+1, j], [i, j-1:j+2])))
#pragma approx tensor functor(ofn: [i, j, 0:1] = ([i, j]))
#pragma approx tensor map(to: ifn(t[1:N-1, 1:M-1]))
#pragma approx tensor map(from: ofn(tnew[1:N-1, 1:M-1]))
#pragma approx ml(predicated:useModel) in(t) out(tnew) model(%q) db(%q)
`, model, db)
}

func newStencilRegion(t *testing.T, grid, gridNew []float64, n, m int,
	useModel *bool, model, db string) *Region {
	t.Helper()
	r, err := NewRegion("stencil",
		Directives(stencilDirectives(model, db)),
		BindInt("N", n), BindInt("M", m),
		BindArray("t", grid, n, m),
		BindArray("tnew", gridNew, n, m),
		BindPredicate("useModel", func() bool { return *useModel }),
	)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

// TestCollectTrainInferWorkflow drives the complete paper workflow on the
// Figure 2 program: collect region data into the database, train a
// surrogate offline, deploy it through the model clause, and check the
// surrogate-produced application state approximates the accurate state.
func TestCollectTrainInferWorkflow(t *testing.T) {
	const N, M = 12, 14
	dir := t.TempDir()
	dbPath := filepath.Join(dir, "data.gh5")
	modelPath := filepath.Join(dir, "model.gmod")

	grid := make([]float64, N*M)
	gridNew := make([]float64, N*M)
	useModel := false

	region := newStencilRegion(t, grid, gridNew, N, M, &useModel, modelPath, dbPath)
	defer region.Close()

	// --- Phase 1: data collection over several timesteps.
	for i := range grid {
		grid[i] = math.Sin(float64(i) * 0.13)
	}
	const steps = 30
	for s := 0; s < steps; s++ {
		if err := region.Execute(func() error {
			jacobiStep(grid, gridNew, N, M)
			return nil
		}); err != nil {
			t.Fatalf("collect step %d: %v", s, err)
		}
		copy(grid, gridNew)
	}
	if err := region.Flush(); err != nil {
		t.Fatal(err)
	}
	st := region.Stats()
	if st.Collections != steps || st.Inferences != 0 {
		t.Fatalf("stats after collection: %+v", st)
	}

	// --- Phase 2: offline training from the database.
	f, err := h5.Open(dbPath)
	if err != nil {
		t.Fatal(err)
	}
	x, err := f.Read("stencil", "inputs")
	if err != nil {
		t.Fatal(err)
	}
	y, err := f.Read("stencil", "outputs")
	if err != nil {
		t.Fatal(err)
	}
	if x.Dim(0) != steps*(N-2)*(M-2) || x.Dim(1) != 5 || y.Dim(1) != 1 {
		t.Fatalf("database shapes: x %v, y %v", x.Shape(), y.Shape())
	}
	rt, err := f.Read("stencil", "runtime_ns")
	if err != nil {
		t.Fatal(err)
	}
	if rt.Dim(0) != steps {
		t.Fatalf("runtime records = %d, want %d", rt.Dim(0), steps)
	}
	ds, err := nn.NewDataset(x, y)
	if err != nil {
		t.Fatal(err)
	}
	net := nn.NewNetwork(17)
	net.Add(net.NewDense(5, 16), nn.NewActivation(nn.ActTanh), net.NewDense(16, 1))
	h, err := net.Fit(ds, nil, nn.TrainConfig{Epochs: 60, BatchSize: 64, LR: 0.01, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if h.BestVal > 1e-3 {
		t.Fatalf("surrogate did not learn the stencil: val loss %g", h.BestVal)
	}
	if err := net.Save(modelPath); err != nil {
		t.Fatal(err)
	}

	// --- Phase 3: deployment. Toggle the predicate — no recompilation,
	// same region object, per the programming model's design.
	useModel = true
	want := make([]float64, N*M)
	jacobiStep(grid, want, N, M)
	if err := region.Execute(func() error {
		t.Fatal("accurate path must not run during inference")
		return nil
	}); err != nil {
		t.Fatalf("inference: %v", err)
	}
	var maxErr float64
	for i := 1; i < N-1; i++ {
		for j := 1; j < M-1; j++ {
			if d := math.Abs(gridNew[i*M+j] - want[i*M+j]); d > maxErr {
				maxErr = d
			}
		}
	}
	if maxErr > 0.15 {
		t.Fatalf("surrogate output error too large: %g", maxErr)
	}
	st = region.Stats()
	if st.Inferences != 1 {
		t.Fatalf("stats after inference: %+v", st)
	}
	if st.ToTensor == 0 || st.Inference == 0 || st.FromTensor == 0 {
		t.Fatalf("phase timers not populated: %+v", st)
	}
}

func TestPredicatedFalseCollects(t *testing.T) {
	const N, M = 6, 6
	dir := t.TempDir()
	grid := make([]float64, N*M)
	gridNew := make([]float64, N*M)
	useModel := false
	region := newStencilRegion(t, grid, gridNew, N, M, &useModel,
		filepath.Join(dir, "m.gmod"), filepath.Join(dir, "d.gh5"))
	defer region.Close()

	ran := false
	if err := region.Execute(func() error { ran = true; jacobiStep(grid, gridNew, N, M); return nil }); err != nil {
		t.Fatal(err)
	}
	if !ran {
		t.Fatal("accurate path must run when predicate is false")
	}
	if region.Stats().Collections != 1 {
		t.Fatalf("stats: %+v", region.Stats())
	}
}

func TestInferModeWithoutModelFails(t *testing.T) {
	const N, M = 6, 6
	grid := make([]float64, N*M)
	gridNew := make([]float64, N*M)
	r, err := NewRegion("r",
		Directives(`
tensor functor(ifn: [i, j, 0:5] = (([i-1, j], [i+1, j], [i, j-1:j+2])))
tensor functor(ofn: [i, j, 0:1] = ([i, j]))
tensor map(to: ifn(t[1:N-1, 1:M-1]))
tensor map(from: ofn(tnew[1:N-1, 1:M-1]))
ml(infer) in(t) out(tnew)
`),
		BindInt("N", N), BindInt("M", M),
		BindArray("t", grid, N, M),
		BindArray("tnew", gridNew, N, M),
	)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if err := r.Execute(func() error { return nil }); err == nil {
		t.Fatal("want error: inference without model clause")
	}
}

func TestCollectModeWithoutDBFails(t *testing.T) {
	const N, M = 6, 6
	grid := make([]float64, N*M)
	gridNew := make([]float64, N*M)
	r, err := NewRegion("r",
		Directives(`
tensor functor(ifn: [i, j, 0:5] = (([i-1, j], [i+1, j], [i, j-1:j+2])))
tensor functor(ofn: [i, j, 0:1] = ([i, j]))
tensor map(to: ifn(t[1:N-1, 1:M-1]))
tensor map(from: ofn(tnew[1:N-1, 1:M-1]))
ml(collect) in(t) out(tnew)
`),
		BindInt("N", N), BindInt("M", M),
		BindArray("t", grid, N, M),
		BindArray("tnew", gridNew, N, M),
	)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if err := r.Execute(func() error { return nil }); err == nil {
		t.Fatal("want error: collection without db clause")
	}
}

func TestIfClauseGatesRegion(t *testing.T) {
	const N, M = 6, 6
	dir := t.TempDir()
	grid := make([]float64, N*M)
	gridNew := make([]float64, N*M)
	gate := false
	r, err := NewRegion("gated",
		Directives(fmt.Sprintf(`
tensor functor(ifn: [i, j, 0:5] = (([i-1, j], [i+1, j], [i, j-1:j+2])))
tensor functor(ofn: [i, j, 0:1] = ([i, j]))
tensor map(to: ifn(t[1:N-1, 1:M-1]))
tensor map(from: ofn(tnew[1:N-1, 1:M-1]))
ml(collect) in(t) out(tnew) db(%q) if(gate)
`, filepath.Join(dir, "d.gh5"))),
		BindInt("N", N), BindInt("M", M),
		BindArray("t", grid, N, M),
		BindArray("tnew", gridNew, N, M),
		BindPredicate("gate", func() bool { return gate }),
	)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()

	// Gate false: accurate path only, no collection.
	if err := r.Execute(func() error { return nil }); err != nil {
		t.Fatal(err)
	}
	st := r.Stats()
	if st.Collections != 0 || st.AccurateRuns != 1 {
		t.Fatalf("gate=false stats: %+v", st)
	}
	// Gate true: collection resumes.
	gate = true
	if err := r.Execute(func() error { return nil }); err != nil {
		t.Fatal(err)
	}
	st = r.Stats()
	if st.Collections != 1 {
		t.Fatalf("gate=true stats: %+v", st)
	}
}

func TestRegionValidationErrors(t *testing.T) {
	const N = 4
	buf := make([]float64, N)
	cases := []struct {
		name string
		opts []Option
	}{
		{"missing ml", []Option{
			Directives(`tensor functor(f: [i, 0:1] = ([i]))`),
		}},
		{"map without functor", []Option{
			Directives(`
tensor map(to: nosuch(x[0:N]))
ml(collect) in(x) out(x) db("d")`),
			BindInt("N", N), BindArray("x", buf, N),
		}},
		{"ml names unbound array", []Option{
			Directives(`
tensor functor(f: [i, 0:1] = ([i]))
tensor map(to: f(x[0:N]))
tensor map(from: f(x[0:N]))
ml(collect) in(x) out(zz) db("d")`),
			BindInt("N", N), BindArray("x", buf, N),
		}},
		{"ml in not covered by to-map", []Option{
			Directives(`
tensor functor(f: [i, 0:1] = ([i]))
tensor map(from: f(x[0:N]))
tensor map(to: f(y[0:N]))
ml(collect) in(x) out(x) db("d")`),
			BindInt("N", N), BindArray("x", buf, N), BindArray("y", make([]float64, N), N),
		}},
		{"no to map", []Option{
			Directives(`
tensor functor(f: [i, 0:1] = ([i]))
tensor map(from: f(x[0:N]))
ml(collect) out(x) db("d")`),
			BindInt("N", N), BindArray("x", buf, N),
		}},
		{"unbound predicate", []Option{
			Directives(`
tensor functor(f: [i, 0:1] = ([i]))
tensor map(to: f(x[0:N]))
tensor map(from: f(x[0:N]))
ml(predicated:mystery) inout(x) db("d")`),
			BindInt("N", N), BindArray("x", buf, N),
		}},
		{"bad directive text", []Option{
			Directives(`tensor functor(f: [i 0:1] = %%`),
		}},
		{"duplicate functor", []Option{
			Directives(`
tensor functor(f: [i, 0:1] = ([i]))
tensor functor(f: [i, 0:1] = ([i]))
tensor map(to: f(x[0:N]))
tensor map(from: f(x[0:N]))
ml(collect) inout(x) db("d")`),
			BindInt("N", N), BindArray("x", buf, N),
		}},
		{"duplicate array binding", []Option{
			BindArray("x", buf, N), BindArray("x", buf, N),
		}},
		{"duplicate int binding", []Option{
			BindInt("N", 1), BindInt("N", 2),
		}},
		{"nil predicate", []Option{
			BindPredicate("p", nil),
		}},
	}
	for _, c := range cases {
		if _, err := NewRegion(c.name, c.opts...); err == nil {
			t.Errorf("%s: want construction error", c.name)
		}
	}
}

func TestInOutSharedArray(t *testing.T) {
	// MiniWeather-style region: the same array is both input and output.
	const N = 8
	dir := t.TempDir()
	state := make([]float64, N)
	for i := range state {
		state[i] = float64(i)
	}
	r, err := NewRegion("iter",
		Directives(fmt.Sprintf(`
tensor functor(f: [i, 0:1] = ([i]))
tensor map(to: f(state[0:N]))
tensor map(from: f(state[0:N]))
ml(collect) inout(state) db(%q)
`, filepath.Join(dir, "d.gh5"))),
		BindInt("N", N),
		BindArray("state", state, N),
	)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if err := r.Execute(func() error {
		for i := range state {
			state[i] *= 2
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if err := r.Flush(); err != nil {
		t.Fatal(err)
	}
	f, err := h5.Open(filepath.Join(dir, "d.gh5"))
	if err != nil {
		t.Fatal(err)
	}
	x, _ := f.Read("iter", "inputs")
	y, _ := f.Read("iter", "outputs")
	// Inputs were captured before the region ran, outputs after.
	if x.At(3, 0) != 3 || y.At(3, 0) != 6 {
		t.Fatalf("inout capture wrong: in %g out %g", x.At(3, 0), y.At(3, 0))
	}
}

func TestModelCacheSharing(t *testing.T) {
	ClearModelCache()
	const N = 4
	dir := t.TempDir()
	modelPath := filepath.Join(dir, "m.gmod")
	net := nn.NewNetwork(3)
	net.Add(net.NewDense(1, 1))
	if err := net.Save(modelPath); err != nil {
		t.Fatal(err)
	}
	mk := func(buf []float64) *Region {
		r, err := NewRegion("cached",
			Directives(fmt.Sprintf(`
tensor functor(f: [i, 0:1] = ([i]))
tensor map(to: f(x[0:N]))
tensor map(from: f(x[0:N]))
ml(infer) inout(x) model(%q)
`, modelPath)),
			BindInt("N", N),
			BindArray("x", buf, N),
		)
		if err != nil {
			t.Fatal(err)
		}
		return r
	}
	r1 := mk(make([]float64, N))
	r2 := mk(make([]float64, N))
	defer r1.Close()
	defer r2.Close()
	if err := r1.Execute(nil); err != nil {
		t.Fatal(err)
	}
	if err := r2.Execute(nil); err != nil {
		t.Fatal(err)
	}
	n1 := r1.engine.(*LocalEngine).Network()
	n2 := r2.engine.(*LocalEngine).Network()
	if n1 == nil || n1 != n2 {
		t.Fatal("model cache must share loaded networks across regions")
	}
	r1.InvalidateModel()
	if err := r1.Execute(nil); err != nil {
		t.Fatal(err)
	}
}

func TestExecuteAfterCloseFails(t *testing.T) {
	const N = 4
	r, err := NewRegion("closed",
		Directives(`
tensor functor(f: [i, 0:1] = ([i]))
tensor map(to: f(x[0:N]))
tensor map(from: f(x[0:N]))
ml(collect) inout(x) db("unused.gh5")
`),
		BindInt("N", N),
		BindArray("x", make([]float64, N), N),
	)
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Close(); err != nil {
		t.Fatal(err)
	}
	if err := r.Execute(func() error { return nil }); err == nil {
		t.Fatal("want error executing a closed region")
	}
	if err := r.Close(); err != nil {
		t.Fatal("second Close must be a no-op")
	}
}

func TestDirectiveAccounting(t *testing.T) {
	const N = 4
	r, err := NewRegion("acc",
		Directives(`
// comment lines are not directives
tensor functor(f: [i, 0:1] = ([i]))
tensor map(to: f(x[0:N]))
tensor map(from: f(x[0:N]))
ml(collect) inout(x) db("d.gh5")
`),
		BindInt("N", N),
		BindArray("x", make([]float64, N), N),
	)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if got := r.NumDirectives(); got != 4 {
		t.Fatalf("NumDirectives = %d, want 4", got)
	}
	if len(r.DirectiveLines()) != 4 {
		t.Fatal("DirectiveLines mismatch")
	}
}

func TestImage2DLayoutRoundTrip(t *testing.T) {
	// A 2-D "frame" flows through a CNN-shaped identity model:
	// [H, W, 1] -> [1, 1, H, W] -> model -> back.
	const H, W = 6, 6
	dir := t.TempDir()
	modelPath := filepath.Join(dir, "cnn.gmod")

	// A 1x1 conv with weight 1 and bias 0 is the identity on [1,1,H,W].
	net := nn.NewNetwork(5)
	c := net.NewConv2D(1, 1, 1, 1, 1)
	c.Weight.W.Data()[0] = 1
	c.Bias.W.Data()[0] = 0
	net.Add(c)
	if err := net.Save(modelPath); err != nil {
		t.Fatal(err)
	}

	frame := make([]float64, H*W)
	out := make([]float64, H*W)
	for i := range frame {
		frame[i] = float64(i) * 0.5
	}
	r, err := NewRegion("frame",
		Directives(fmt.Sprintf(`
tensor functor(pix: [i, j, 0:1] = ([i, j]))
tensor map(to: pix(frame[0:H, 0:W]))
tensor map(from: pix(out[0:H, 0:W]))
ml(infer) in(frame) out(out) model(%q)
`, modelPath)),
		BindInt("H", H), BindInt("W", W),
		BindArray("frame", frame, H, W),
		BindArray("out", out, H, W),
		InputLayout(LayoutImage2D),
		OutputLayout(LayoutImage2D),
	)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if err := r.Execute(nil); err != nil {
		t.Fatal(err)
	}
	for i := range frame {
		if math.Abs(out[i]-frame[i]) > 1e-12 {
			t.Fatalf("identity CNN round-trip failed at %d: %g vs %g", i, out[i], frame[i])
		}
	}
}

func TestChannelsLayout(t *testing.T) {
	// MiniWeather-style state [C, H, W] presented as [1, C, H, W].
	const C, H, W = 2, 4, 4
	dir := t.TempDir()
	modelPath := filepath.Join(dir, "chan.gmod")
	net := nn.NewNetwork(5)
	cv := net.NewConv2D(C, C, 1, 1, 1)
	// Identity across channels: weight [C,C,1,1] = I.
	wd := cv.Weight.W.Data()
	for i := range wd {
		wd[i] = 0
	}
	wd[0] = 1       // out0 <- in0
	wd[C*1*1+1] = 1 // out1 <- in1 (offset outC stride = C)
	cv.Bias.W.Data()[0] = 0
	cv.Bias.W.Data()[1] = 0
	net.Add(cv)
	if err := net.Save(modelPath); err != nil {
		t.Fatal(err)
	}

	state := make([]float64, C*H*W)
	for i := range state {
		state[i] = float64(i)
	}
	want := append([]float64(nil), state...)
	r, err := NewRegion("state",
		Directives(fmt.Sprintf(`
tensor functor(cell: [c, i, j, 0:1] = ([c, i, j]))
tensor map(to: cell(state[0:C, 0:H, 0:W]))
tensor map(from: cell(state[0:C, 0:H, 0:W]))
ml(infer) inout(state) model(%q)
`, modelPath)),
		BindInt("C", C), BindInt("H", H), BindInt("W", W),
		BindArray("state", state, C, H, W),
		InputLayout(LayoutChannels),
		OutputLayout(LayoutChannels),
	)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if err := r.Execute(nil); err != nil {
		t.Fatal(err)
	}
	for i := range state {
		if math.Abs(state[i]-want[i]) > 1e-12 {
			t.Fatalf("channel identity failed at %d: %g vs %g", i, state[i], want[i])
		}
	}
}

func TestMultiArrayTabularRegion(t *testing.T) {
	// Binomial-options-style region: three input arrays, one output.
	const N = 16
	dir := t.TempDir()
	dbPath := filepath.Join(dir, "d.gh5")
	s := make([]float64, N)
	x := make([]float64, N)
	tt := make([]float64, N)
	price := make([]float64, N)
	for i := 0; i < N; i++ {
		s[i], x[i], tt[i] = float64(i), float64(i)*2, 1
	}
	r, err := NewRegion("options",
		Directives(fmt.Sprintf(`
tensor functor(ifn: [i, 0:3] = ([i]))
tensor functor(ofn: [i, 0:1] = ([i]))
tensor map(to: ifn(S[0:N], X[0:N], T[0:N]))
tensor map(from: ofn(price[0:N]))
ml(collect) in(S, X, T) out(price) db(%q)
`, dbPath)),
		BindInt("N", N),
		BindArray("S", s, N), BindArray("X", x, N), BindArray("T", tt, N),
		BindArray("price", price, N),
	)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if err := r.Execute(func() error {
		for i := 0; i < N; i++ {
			price[i] = s[i] + x[i]
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if err := r.Flush(); err != nil {
		t.Fatal(err)
	}
	f, _ := h5.Open(dbPath)
	xs, _ := f.Read("options", "inputs")
	ys, _ := f.Read("options", "outputs")
	if !tensor.ShapeEqual(xs.Shape(), []int{N, 3}) || !tensor.ShapeEqual(ys.Shape(), []int{N, 1}) {
		t.Fatalf("shapes: %v %v", xs.Shape(), ys.Shape())
	}
	if xs.At(3, 0) != 3 || xs.At(3, 1) != 6 || xs.At(3, 2) != 1 || ys.At(3, 0) != 9 {
		t.Fatal("tabular collection contents wrong")
	}
}

func TestBridgeOverheadStat(t *testing.T) {
	s := Stats{ToTensor: 2, FromTensor: 2, Inference: 100}
	if got := s.BridgeOverhead(); math.Abs(got-0.04) > 1e-12 {
		t.Fatalf("overhead = %g", got)
	}
	if (Stats{}).BridgeOverhead() != 0 {
		t.Fatal("zero-inference overhead should be 0")
	}
}
