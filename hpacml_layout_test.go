package hpacml

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/nn"
)

func TestAccurateErrorPropagates(t *testing.T) {
	const N = 4
	dir := t.TempDir()
	r, err := NewRegion("err",
		Directives(fmt.Sprintf(`
tensor functor(f: [i, 0:1] = ([i]))
tensor map(to: f(x[0:N]))
tensor map(from: f(x[0:N]))
ml(collect) inout(x) db(%q)
`, filepath.Join(dir, "d.gh5"))),
		BindInt("N", N),
		BindArray("x", make([]float64, N), N),
	)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	boom := errors.New("solver diverged")
	if err := r.Execute(func() error { return boom }); !errors.Is(err, boom) {
		t.Fatalf("accurate-path error lost: %v", err)
	}
	// A failed invocation must not record a collection.
	if st := r.Stats(); st.Collections != 0 {
		t.Fatalf("failed run recorded a collection: %+v", st)
	}
}

func TestImageLayoutRejectsWrongSweepRank(t *testing.T) {
	const N = 8
	dir := t.TempDir()
	modelPath := filepath.Join(dir, "m.gmod")
	net := nn.NewNetwork(1)
	net.Add(net.NewDense(1, 1))
	if err := net.Save(modelPath); err != nil {
		t.Fatal(err)
	}
	r, err := NewRegion("img",
		Directives(fmt.Sprintf(`
tensor functor(f: [i, 0:1] = ([i]))
tensor map(to: f(x[0:N]))
tensor map(from: f(x[0:N]))
ml(infer) inout(x) model(%q)
`, modelPath)),
		BindInt("N", N),
		BindArray("x", make([]float64, N), N),
		InputLayout(LayoutImage2D), // 1-D sweep cannot be an image
	)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if err := r.Execute(nil); err == nil {
		t.Fatal("want error: image layout needs a 2-D sweep")
	}
}

func TestChannelsLayoutRejectsFeatureDims(t *testing.T) {
	const C, H, W = 2, 4, 4
	dir := t.TempDir()
	modelPath := filepath.Join(dir, "m.gmod")
	net := nn.NewNetwork(1)
	net.Add(net.NewDense(1, 1))
	if err := net.Save(modelPath); err != nil {
		t.Fatal(err)
	}
	// Functor with 2 features per cell: channels layout requires 1.
	r, err := NewRegion("chan",
		Directives(fmt.Sprintf(`
tensor functor(f: [c, i, j, 0:2] = ([c, i, j], [c, i, j]))
tensor map(to: f(x[0:C, 0:H, 0:W]))
tensor map(from: f(x[0:C, 0:H, 0:W]))
ml(infer) inout(x) model(%q)
`, modelPath)),
		BindInt("C", C), BindInt("H", H), BindInt("W", W),
		BindArray("x", make([]float64, C*H*W), C, H, W),
		InputLayout(LayoutChannels),
	)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if err := r.Execute(nil); err == nil {
		t.Fatal("want error: channels layout needs exactly one feature")
	}
}

func TestInferenceModelOutputSizeMismatch(t *testing.T) {
	const N = 4
	dir := t.TempDir()
	modelPath := filepath.Join(dir, "wrong.gmod")
	// The region expects N outputs but the model produces 3 per sample.
	net := nn.NewNetwork(1)
	net.Add(net.NewDense(1, 3))
	if err := net.Save(modelPath); err != nil {
		t.Fatal(err)
	}
	r, err := NewRegion("mismatch",
		Directives(fmt.Sprintf(`
tensor functor(f: [i, 0:1] = ([i]))
tensor map(to: f(x[0:N]))
tensor map(from: f(x[0:N]))
ml(infer) inout(x) model(%q)
`, modelPath)),
		BindInt("N", N),
		BindArray("x", make([]float64, N), N),
	)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if err := r.Execute(nil); err == nil {
		t.Fatal("want error: model output size does not match the out maps")
	}
}

func TestInferenceCorruptModelFile(t *testing.T) {
	const N = 4
	dir := t.TempDir()
	modelPath := filepath.Join(dir, "corrupt.gmod")
	if err := os.WriteFile(modelPath, []byte("not a model"), 0o644); err != nil {
		t.Fatal(err)
	}
	r, err := NewRegion("corrupt",
		Directives(fmt.Sprintf(`
tensor functor(f: [i, 0:1] = ([i]))
tensor map(to: f(x[0:N]))
tensor map(from: f(x[0:N]))
ml(infer) inout(x) model(%q)
`, modelPath)),
		BindInt("N", N),
		BindArray("x", make([]float64, N), N),
	)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if err := r.Execute(nil); err == nil {
		t.Fatal("want error loading a corrupt model file")
	}
}
