// Acceptance tests for the pluggable engine API: a region whose
// model() clause carries an http:// URI executes through a live
// hpacml-serve handler, and the fallback policy runs the accurate path
// when the server is down or the caller's deadline has expired.
package hpacml_test

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"net/http/httptest"
	"path/filepath"
	"testing"
	"time"

	hpacml "repro"

	"repro/internal/nn"
	"repro/internal/serve"
	"repro/internal/tensor"
)

// saveVectorNet trains nothing — it saves a deterministic MLP mapping
// inDim features to outDim, so local and remote inference of the same
// file can be compared bit-for-bit.
func saveVectorNet(t *testing.T, dir string, seed int64, inDim, outDim int) string {
	t.Helper()
	path := filepath.Join(dir, fmt.Sprintf("vec_%d.gmod", seed))
	net := nn.NewNetwork(seed)
	net.Add(net.NewDense(inDim, 8), nn.NewActivation(nn.ActTanh), net.NewDense(8, outDim))
	if err := net.Save(path); err != nil {
		t.Fatal(err)
	}
	return path
}

// vectorRegion builds a flat [1, in] -> [1, out] region over x and y
// with the given model reference (path or URI).
func vectorRegion(t *testing.T, name, modelRef string, x, y []float64) *hpacml.Region {
	t.Helper()
	r, err := hpacml.NewRegion(name,
		hpacml.Directives(fmt.Sprintf(`
tensor functor(vin: [i, 0:FIN] = ([0:FIN]))
tensor functor(vout: [i, 0:FOUT] = ([0:FOUT]))
tensor map(to: vin(x[0:1]))
tensor map(from: vout(y[0:1]))
ml(infer) in(x) out(y) model(%q)
`, modelRef)),
		hpacml.BindInt("FIN", len(x)),
		hpacml.BindInt("FOUT", len(y)),
		hpacml.BindArray("x", x, len(x)),
		hpacml.BindArray("y", y, len(y)),
	)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

// startServe hosts the model file behind a live serve handler and
// returns the base URL.
func startServe(t *testing.T, modelPath string) string {
	t.Helper()
	srv, err := serve.NewServer(serve.Config{MaxBatch: 8, Workers: 1},
		serve.ModelSpec{Name: "vec", Path: modelPath})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(serve.NewHandler(srv))
	t.Cleanup(func() {
		ts.Close()
		srv.Close()
	})
	return ts.URL
}

// TestRemoteEngineMatchesLocal round-trips single and batched region
// execution through a live hpacml-serve handler and checks the answers
// against in-process inference of the same model file.
func TestRemoteEngineMatchesLocal(t *testing.T) {
	hpacml.ClearModelCache()
	const inDim, outDim, n = 3, 2, 5
	dir := t.TempDir()
	modelPath := saveVectorNet(t, dir, 41, inDim, outDim)
	base := startServe(t, modelPath)

	x := make([]float64, inDim)
	yLocal := make([]float64, outDim)
	yRemote := make([]float64, outDim)
	local := vectorRegion(t, "local", modelPath, x, yLocal)
	defer local.Close()
	remote := vectorRegion(t, "remote", base+"/vec", x, yRemote)
	defer remote.Close()

	rng := rand.New(rand.NewSource(9))
	for i := 0; i < n; i++ {
		for j := range x {
			x[j] = rng.Float64()
		}
		if err := local.Execute(nil); err != nil {
			t.Fatal(err)
		}
		want := append([]float64(nil), yLocal...)
		if err := remote.Execute(nil); err != nil {
			t.Fatal(err)
		}
		for j := range want {
			if yRemote[j] != want[j] {
				t.Fatalf("invocation %d feature %d: remote %v != local %v", i, j, yRemote[j], want[j])
			}
		}
	}
	st := remote.Stats()
	if st.RemoteInference != n || st.Inferences != n || st.Fallbacks != 0 {
		t.Fatalf("remote stats: %+v", st)
	}
	if lst := local.Stats(); lst.RemoteInference != 0 {
		t.Fatalf("local region counted remote inference: %+v", lst)
	}

	// Batched: the whole batch travels as one request and scatters in
	// invocation order, matching the sequential loop.
	const batch = 4
	inputs := make([][]float64, batch)
	want := make([][]float64, batch)
	for i := range inputs {
		inputs[i] = []float64{rng.Float64(), rng.Float64(), rng.Float64()}
		copy(x, inputs[i])
		if err := local.Execute(nil); err != nil {
			t.Fatal(err)
		}
		want[i] = append([]float64(nil), yLocal...)
	}
	got := make([][]float64, batch)
	err := remote.ExecuteBatch(batch,
		func(i int) error { copy(x, inputs[i]); return nil },
		func(i int) error { got[i] = append([]float64(nil), yRemote...); return nil },
	)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		for j := range want[i] {
			if got[i][j] != want[i][j] {
				t.Fatalf("batch row %d feature %d: remote %v != local %v", i, j, got[i][j], want[i][j])
			}
		}
	}
	st = remote.Stats()
	if st.RemoteInference != n+batch || st.Batches != 1 || st.BatchedInvocations != batch {
		t.Fatalf("remote batch stats: %+v", st)
	}
}

// TestRemoteFallbackServerDown proves the automatic fallback policy: a
// region pointed at a dead server runs the accurate path instead of
// failing, and keeps doing so per invocation.
func TestRemoteFallbackServerDown(t *testing.T) {
	x := make([]float64, 2)
	y := make([]float64, 1)
	r := vectorRegion(t, "dead", "http://127.0.0.1:1/vec", x, y)
	defer r.Close()

	accurateRan := 0
	accurate := func() error { accurateRan++; y[0] = 42; return nil }
	for i := 0; i < 3; i++ {
		if err := r.Execute(accurate); err != nil {
			t.Fatalf("invocation %d: fallback should swallow the error, got %v", i, err)
		}
	}
	st := r.Stats()
	if accurateRan != 3 || st.Fallbacks != 3 || st.AccurateRuns != 3 || y[0] != 42 {
		t.Fatalf("fallback accounting: accurate=%d stats=%+v", accurateRan, st)
	}
	if st.Inferences != 0 || st.RemoteInference != 0 {
		t.Fatalf("no inference should have been counted: %+v", st)
	}

	// Without an accurate closure there is nothing to fall back to.
	if err := r.Execute(nil); err == nil {
		t.Fatal("want error when the server is down and no accurate path exists")
	}
}

// TestRemoteFallbackDeadline proves an expired caller deadline reaches
// the engine and triggers the accurate fallback even when the server is
// healthy.
func TestRemoteFallbackDeadline(t *testing.T) {
	hpacml.ClearModelCache()
	const inDim, outDim = 3, 2
	dir := t.TempDir()
	base := startServe(t, saveVectorNet(t, dir, 43, inDim, outDim))

	x := make([]float64, inDim)
	y := make([]float64, outDim)
	r := vectorRegion(t, "deadline", base+"/vec", x, y)
	defer r.Close()

	// A healthy warm-up first, so the deadline (not resolution) is what
	// fails.
	if err := r.Execute(nil); err != nil {
		t.Fatal(err)
	}

	expired, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer cancel()
	accurateRan := false
	if err := r.ExecuteContext(expired, func() error { accurateRan = true; return nil }); err != nil {
		t.Fatalf("fallback should swallow the deadline error, got %v", err)
	}
	st := r.Stats()
	if !accurateRan || st.Fallbacks != 1 || st.RemoteInference != 1 {
		t.Fatalf("deadline fallback: accurate=%v stats=%+v", accurateRan, st)
	}

	// A live context keeps working afterwards.
	if err := r.Execute(nil); err != nil {
		t.Fatal(err)
	}
	if st = r.Stats(); st.RemoteInference != 2 {
		t.Fatalf("recovery after deadline: %+v", st)
	}
}

// failingEngine is a custom backend that always errors, for exercising
// WithEngine and the FallbackEngine wrapper around arbitrary engines.
type failingEngine struct{ outDim int }

func (e *failingEngine) Infer(ctx context.Context, in, out *tensor.Tensor) error {
	return errors.New("boom")
}
func (e *failingEngine) OutputShape(in []int) ([]int, error) {
	return []int{in[0], e.outDim}, nil
}
func (e *failingEngine) Warmup(ctx context.Context, inShape []int) error { return nil }

// TestWithEngineCustomFallback injects a custom engine wrapped in the
// fallback policy and checks the Region honors both.
func TestWithEngineCustomFallback(t *testing.T) {
	const N = 4
	x := make([]float64, N)
	r, err := hpacml.NewRegion("custom",
		hpacml.Directives(`
tensor functor(f: [i, 0:1] = ([i]))
tensor map(to: f(x[0:N]))
tensor map(from: f(x[0:N]))
ml(infer) inout(x)
`),
		hpacml.BindInt("N", N),
		hpacml.BindArray("x", x, N),
		hpacml.WithEngine(hpacml.NewFallbackEngine(&failingEngine{outDim: 1})),
	)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	accurateRan := false
	if err := r.Execute(func() error { accurateRan = true; return nil }); err != nil {
		t.Fatalf("custom fallback should swallow the engine error, got %v", err)
	}
	if st := r.Stats(); !accurateRan || st.Fallbacks != 1 {
		t.Fatalf("custom fallback: accurate=%v stats=%+v", accurateRan, st)
	}

	// Unwrapped, the same engine error propagates.
	bare, err := hpacml.NewRegion("bare",
		hpacml.Directives(`
tensor functor(f: [i, 0:1] = ([i]))
tensor map(to: f(x[0:N]))
tensor map(from: f(x[0:N]))
ml(infer) inout(x)
`),
		hpacml.BindInt("N", N),
		hpacml.BindArray("x", x, N),
		hpacml.WithEngine(&failingEngine{outDim: 1}),
	)
	if err != nil {
		t.Fatal(err)
	}
	defer bare.Close()
	if err := bare.Execute(func() error { return nil }); err == nil {
		t.Fatal("bare failing engine must propagate its error")
	}
}

// TestRemoteURIValidation checks construction-time rejection of bad
// model URIs through the public API.
func TestRemoteURIValidation(t *testing.T) {
	x := make([]float64, 2)
	y := make([]float64, 1)
	for _, ref := range []string{
		"ftp://host/model",  // unsupported scheme
		"http://host/a?x=1", // query
		"http://host-only",  // no model-name path segment
	} {
		_, err := hpacml.NewRegion("bad",
			hpacml.Directives(`
tensor functor(vin: [i, 0:2] = ([0:2]))
tensor functor(vout: [i, 0:1] = ([0:1]))
tensor map(to: vin(x[0:1]))
tensor map(from: vout(y[0:1]))
ml(infer) in(x) out(y)
`),
			hpacml.BindArray("x", x, 2),
			hpacml.BindArray("y", y, 1),
			hpacml.WithModel(ref),
		)
		if err == nil {
			t.Fatalf("model ref %q should be rejected at construction", ref)
		}
	}
}
