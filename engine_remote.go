package hpacml

import (
	"context"
	"fmt"
	"time"

	"repro/internal/directive"
	"repro/internal/serveclient"
	"repro/internal/tensor"
)

// RemoteEngine executes a region's inference against a running
// hpacml-serve instance over its HTTP API, through the typed pooled
// client (internal/serveclient). Engines that build their own client
// speak the binary frame wire — one length-prefixed request per batch,
// raw float payloads — and downgrade to JSON automatically against
// servers that predate it. A region selects the engine by writing an
// http(s):// URI in its model() clause —
//
//	ml(infer) in(x) out(y) model("http://127.0.0.1:8080/binomial")
//
// — where the URI's last path segment is the server's registered model
// name and the rest is the server base URL. The annotation is the same
// one-line contract as the local case; only the reference changes,
// which is the SmartSim-style separation of the solver loop from where
// the model actually runs.
//
// The served API is flat vectors, so remote execution covers flat
// [rows, features] regions (the paper's MLP benchmarks); image/channel
// layouts are refused at warmup. A batch of rows travels as one
// request, and the caller's context deadline rides the wire: cancel the
// context and the HTTP request is torn down. Regions built from a model
// URI wrap this engine in a FallbackEngine automatically, so a dead
// server degrades to the accurate path instead of failing the solve.
type RemoteEngine struct {
	client *serveclient.Client
	model  string

	resolved bool
	inDim    int
	outDim   int
}

// DefaultRemoteTimeout bounds each request of a region-built remote
// engine end-to-end, so a hung server (accepted connection, no answer)
// surfaces as an engine error the fallback policy can act on instead of
// blocking Execute indefinitely. Engines built directly with
// NewRemoteEngine choose their own limit (zero = context-only).
const DefaultRemoteTimeout = 30 * time.Second

// RemoteOption configures a RemoteEngine.
type RemoteOption func(*remoteConfig)

type remoteConfig struct {
	timeout time.Duration
	client  *serveclient.Client
}

// WithRequestTimeout bounds each inference request end-to-end,
// independent of the caller's context (whichever expires first wins).
func WithRequestTimeout(d time.Duration) RemoteOption {
	return func(c *remoteConfig) { c.timeout = d }
}

// WithClient substitutes the underlying serve client (shared pools,
// custom transports). The base URL of the client wins over the URI's.
func WithClient(c *serveclient.Client) RemoteOption {
	return func(rc *remoteConfig) { rc.client = c }
}

// NewRemoteEngine builds a remote engine from a model URI
// (http(s)://host[:port][/prefix...]/model-name).
func NewRemoteEngine(uri string, opts ...RemoteOption) (*RemoteEngine, error) {
	base, name, err := directive.SplitRemoteModel(uri)
	if err != nil {
		return nil, err
	}
	var cfg remoteConfig
	for _, opt := range opts {
		opt(&cfg)
	}
	client := cfg.client
	if client == nil {
		copts := []serveclient.Option{serveclient.WithWire(serveclient.WireBinary)}
		if cfg.timeout > 0 {
			copts = append(copts, serveclient.WithTimeout(cfg.timeout))
		}
		client = serveclient.New(base, copts...)
	}
	return &RemoteEngine{client: client, model: name}, nil
}

// ModelName returns the registered model name the engine targets.
func (e *RemoteEngine) ModelName() string { return e.model }

// RemoteExecution marks the engine for Stats.RemoteInference counting.
func (e *RemoteEngine) RemoteExecution() bool { return true }

// Warmup resolves the model in the server's registry (recording its
// I/O widths) and validates the region's bridged input shape against
// it: remote execution serves flat [rows, features] regions only.
func (e *RemoteEngine) Warmup(ctx context.Context, inShape []int) error {
	if len(inShape) != 2 {
		return fmt.Errorf("hpacml: remote engine serves flat [rows, features] regions, got input shape %v", inShape)
	}
	if !e.resolved {
		info, err := e.client.Model(ctx, e.model)
		if err != nil {
			return fmt.Errorf("hpacml: remote model %q at %s: %w", e.model, e.client.Base(), err)
		}
		e.inDim, e.outDim = info.InDim, info.OutDim
		e.resolved = true
	}
	if inShape[1] != e.inDim {
		return fmt.Errorf("hpacml: remote model %q wants %d input features, region presents %d", e.model, e.inDim, inShape[1])
	}
	return nil
}

// OutputShape maps [rows, inDim] to [rows, outDim] using the registry
// dimensions resolved at warmup.
func (e *RemoteEngine) OutputShape(in []int) ([]int, error) {
	if !e.resolved {
		return nil, fmt.Errorf("hpacml: remote engine for model %q not warmed up", e.model)
	}
	if len(in) != 2 || in[1] != e.inDim {
		return nil, fmt.Errorf("hpacml: remote model %q wants [rows, %d] inputs, got %v", e.model, e.inDim, in)
	}
	return []int{in[0], e.outDim}, nil
}

// Infer ships the staged rows to the server as one flat [rows, inDim]
// matrix — a single request whether the region ran single or batched —
// and decodes the answers straight into out's storage. On the binary
// wire the round trip is two raw float slabs behind fixed headers; the
// client's transparent fallback keeps old JSON-only servers working at
// the old cost.
func (e *RemoteEngine) Infer(ctx context.Context, in, out *tensor.Tensor) error {
	if in.Rank() != 2 || out.Rank() != 2 {
		return fmt.Errorf("hpacml: remote engine wants 2-D staging, got %v -> %v", in.Shape(), out.Shape())
	}
	rows, inF := in.Dim(0), in.Dim(1)
	outF := out.Dim(1)
	inData, outData := in.Contiguous().Data(), out.Data()

	data, gotCols, err := e.client.InferMatrix(ctx, e.model, rows, inF, inData, outData)
	if err != nil {
		return err
	}
	if gotCols != outF || len(data) != rows*outF {
		return fmt.Errorf("hpacml: remote model %q answered %d floats x %d features, want [%d, %d]",
			e.model, len(data), gotCols, rows, outF)
	}
	if len(data) > 0 && &data[0] != &outData[0] {
		copy(outData, data)
	}
	return nil
}

// Refresh drops the resolved registry dimensions so the next warmup
// re-queries the server (e.g. after the server swapped deployments).
func (e *RemoteEngine) Refresh() { e.resolved = false }

// Close releases the client's pooled connections.
func (e *RemoteEngine) Close() error {
	e.client.CloseIdleConnections()
	return nil
}
