// hpacml-train fits a surrogate model from a collected database and saves
// it in .gmod format for the model() clause — phase two of the paper's
// workflow.
//
// Usage:
//
//	hpacml-train -benchmark binomial -db data/binomial.gh5 \
//	    -model models/binomial.gmod -arch hidden1=64,hidden2=32 \
//	    -lr 3e-3 -epochs 150
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"

	"repro/internal/bo"
	"repro/internal/experiments"
	"repro/internal/telemetry"
)

func main() {
	benchmark := flag.String("benchmark", "", "benchmark name")
	db := flag.String("db", "", "input database path (.gh5)")
	model := flag.String("model", "", "output model path (.gmod)")
	archFlag := flag.String("arch", "", "architecture assignment, e.g. hidden1=64,hidden2=32")
	lr := flag.Float64("lr", 3e-3, "learning rate (Table V)")
	weightDecay := flag.Float64("weight-decay", 1e-4, "weight decay (Table V)")
	dropout := flag.Float64("dropout", 0, "dropout probability (Table V)")
	batch := flag.Int("batch", 64, "batch size (Table V)")
	epochs := flag.Int("epochs", 100, "training epochs")
	normalize := flag.Bool("normalize", false, "standardize features inside the model (recommended before int8 quantization)")
	full := flag.Bool("full", false, "use campaign-scale problem sizes")
	seed := flag.Int64("seed", 29, "random seed")
	version := flag.Bool("version", false, "print version and exit")
	flag.Parse()
	if *version {
		fmt.Println(telemetry.VersionString("hpacml-train"))
		return
	}

	if *benchmark == "" || *db == "" || *model == "" {
		fmt.Fprintln(os.Stderr, "hpacml-train: -benchmark, -db, and -model are required")
		flag.Usage()
		os.Exit(2)
	}
	scale := experiments.ScaleTest
	if *full {
		scale = experiments.ScaleFull
	}
	var h experiments.Harness
	for _, cand := range experiments.Registry(scale) {
		if cand.Info().Name == *benchmark {
			h = cand
		}
	}
	if h == nil {
		fatal(fmt.Errorf("unknown benchmark %q", *benchmark))
	}

	arch, err := parseArch(h, *archFlag, *seed)
	if err != nil {
		fatal(err)
	}
	hyper := map[string]bo.Value{
		"lr":           {Name: "lr", Float: *lr},
		"weight_decay": {Name: "weight_decay", Float: *weightDecay},
		"dropout":      {Name: "dropout", Float: *dropout},
		"batch":        {Name: "batch", Int: *batch, IsInt: true},
	}
	opt := experiments.QuickOptions()
	opt.TrainEpochs = *epochs
	opt.Seed = *seed
	opt.Normalize = *normalize
	if err := os.MkdirAll(filepath.Dir(*model), 0o755); err != nil {
		fatal(err)
	}
	valErr, err := h.Train(*db, *model, arch, hyper, opt)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("trained %s surrogate: validation loss %.6g, saved to %s\n", *benchmark, valErr, *model)
}

// parseArch turns "k=v,k=v" into an assignment, defaulting unset keys to
// the middle of the harness's search space.
func parseArch(h experiments.Harness, s string, seed int64) (map[string]bo.Value, error) {
	space := h.ArchSpace()
	mid := make([]float64, space.Dim())
	for i := range mid {
		mid[i] = 0.5
	}
	arch, err := space.Decode(mid)
	if err != nil {
		return nil, err
	}
	if s == "" {
		return arch, nil
	}
	for _, kv := range strings.Split(s, ",") {
		parts := strings.SplitN(strings.TrimSpace(kv), "=", 2)
		if len(parts) != 2 {
			return nil, fmt.Errorf("bad -arch entry %q (want key=value)", kv)
		}
		key := parts[0]
		if _, known := arch[key]; !known {
			return nil, fmt.Errorf("unknown architecture parameter %q (space has %v)", key, keys(arch))
		}
		if iv, err := strconv.Atoi(parts[1]); err == nil {
			arch[key] = bo.Value{Name: key, Int: iv, IsInt: true}
			continue
		}
		fv, err := strconv.ParseFloat(parts[1], 64)
		if err != nil {
			return nil, fmt.Errorf("bad value in -arch entry %q: %v", kv, err)
		}
		arch[key] = bo.Value{Name: key, Float: fv}
	}
	return arch, nil
}

func keys(m map[string]bo.Value) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	return out
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "hpacml-train:", err)
	os.Exit(1)
}
