// hpacml-eval deploys a trained surrogate in its benchmark and measures
// end-to-end speedup, QoI error, and the HPAC-ML phase breakdown — phase
// three of the paper's workflow, emitting one CSV row per run like the
// paper's benchmark_evaluation scripts, or (with -json) one record of the
// machine-readable results schema shared with the hpacml-serve load
// generator (internal/results).
//
// Usage:
//
//	hpacml-eval -benchmark binomial -model models/binomial.gmod -runs 20
//	hpacml-eval -benchmark binomial -model models/binomial.gmod -json -out eval.json
package main

import (
	"encoding/csv"
	"flag"
	"fmt"
	"os"

	"repro/internal/experiments"
	"repro/internal/results"
	"repro/internal/telemetry"
)

func main() {
	benchmark := flag.String("benchmark", "", "benchmark name")
	model := flag.String("model", "", "trained model path (.gmod)")
	runs := flag.Int("runs", 20, "timing repetitions")
	full := flag.Bool("full", false, "use campaign-scale problem sizes")
	seed := flag.Int64("seed", 29, "random seed")
	csvOut := flag.String("csv", "", "optional CSV output path (default stdout)")
	jsonOut := flag.Bool("json", false, "emit the shared results schema (internal/results) instead of CSV")
	outPath := flag.String("out", "", "with -json: output path (default stdout)")
	version := flag.Bool("version", false, "print version and exit")
	flag.Parse()
	if *version {
		fmt.Println(telemetry.VersionString("hpacml-eval"))
		return
	}

	if *benchmark == "" || *model == "" {
		fmt.Fprintln(os.Stderr, "hpacml-eval: -benchmark and -model are required")
		flag.Usage()
		os.Exit(2)
	}
	scale := experiments.ScaleTest
	if *full {
		scale = experiments.ScaleFull
	}
	var h experiments.Harness
	for _, cand := range experiments.Registry(scale) {
		if cand.Info().Name == *benchmark {
			h = cand
		}
	}
	if h == nil {
		fatal(fmt.Errorf("unknown benchmark %q", *benchmark))
	}
	opt := experiments.QuickOptions()
	opt.EvalRuns = *runs
	opt.Seed = *seed
	res, err := h.Evaluate(*model, opt)
	if err != nil {
		fatal(err)
	}

	if *jsonOut {
		rec := &results.Record{
			Tool:      "hpacml-eval",
			Benchmark: res.Benchmark,
			Model:     *model,
			Eval: &results.Eval{
				Speedup:         res.Speedup,
				Error:           res.Error,
				Metric:          string(h.Info().Metric),
				Params:          res.Params,
				LatencySec:      res.LatencySec,
				ToTensorSec:     res.ToTensorSec,
				InferenceSec:    res.InferenceSec,
				FromTensorSec:   res.FromTensorSec,
				BaselineError:   res.BaselineError,
				Fallbacks:       res.Fallbacks,
				RemoteInference: res.RemoteInference,
				TrustedRows:     res.TrustedRows,
				UncertainRows:   res.UncertainRows,
				OutOfDomainRows: res.OutOfDomainRows,
				CaptureDrops:    res.CaptureDrops,
				CaptureFlushes:  res.CaptureFlushes,
				RemoteCaptures:  res.RemoteCaptures,
			},
		}
		if err := rec.WriteFile(*outPath); err != nil {
			fatal(err)
		}
		return
	}

	out := os.Stdout
	if *csvOut != "" {
		f, err := os.Create(*csvOut)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		out = f
	}
	w := csv.NewWriter(out)
	defer w.Flush()
	w.Write([]string{"benchmark", "speedup", "error", "metric", "params",
		"latency_sec", "to_tensor_sec", "inference_sec", "from_tensor_sec", "baseline_error",
		"fallbacks", "remote_inference", "trusted_rows", "uncertain_rows", "out_of_domain_rows",
		"capture_drops", "capture_flushes", "remote_captures"})
	w.Write([]string{
		res.Benchmark,
		fmt.Sprintf("%.4f", res.Speedup),
		fmt.Sprintf("%.6g", res.Error),
		string(h.Info().Metric),
		fmt.Sprintf("%d", res.Params),
		fmt.Sprintf("%.6g", res.LatencySec),
		fmt.Sprintf("%.6g", res.ToTensorSec),
		fmt.Sprintf("%.6g", res.InferenceSec),
		fmt.Sprintf("%.6g", res.FromTensorSec),
		fmt.Sprintf("%.6g", res.BaselineError),
		fmt.Sprintf("%d", res.Fallbacks),
		fmt.Sprintf("%d", res.RemoteInference),
		fmt.Sprintf("%d", res.TrustedRows),
		fmt.Sprintf("%d", res.UncertainRows),
		fmt.Sprintf("%d", res.OutOfDomainRows),
		fmt.Sprintf("%d", res.CaptureDrops),
		fmt.Sprintf("%d", res.CaptureFlushes),
		fmt.Sprintf("%d", res.RemoteCaptures),
	})
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "hpacml-eval:", err)
	os.Exit(1)
}
