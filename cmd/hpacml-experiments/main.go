// hpacml-experiments regenerates the paper's tables and figures end to
// end: Tables I–V and Figures 5–9 (see EXPERIMENTS.md for the mapping).
//
// Usage:
//
//	hpacml-experiments                    # everything, test scale
//	hpacml-experiments -table 3           # one table
//	hpacml-experiments -figure 8b -sweep 8
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/experiments"
	"repro/internal/telemetry"
)

func main() {
	table := flag.String("table", "", "regenerate one table: 1, 2, 3, 4, or 5")
	figure := flag.String("figure", "", "regenerate one figure: 5, 6, 7, 8a, 8b, 8c, or 9")
	sweep := flag.Int("sweep", 4, "architectures per scatter sweep (Figures 5-8)")
	full := flag.Bool("full", false, "use campaign-scale problem sizes")
	seed := flag.Int64("seed", 29, "random seed")
	work := flag.String("work", "", "working directory (default: temp dir)")
	version := flag.Bool("version", false, "print version and exit")
	flag.Parse()
	if *version {
		fmt.Println(telemetry.VersionString("hpacml-experiments"))
		return
	}

	scale := experiments.ScaleTest
	opt := experiments.QuickOptions()
	if *full {
		scale = experiments.ScaleFull
		opt = experiments.FullOptions()
	}
	opt.Seed = *seed

	dir := *work
	if dir == "" {
		tmp, err := os.MkdirTemp("", "hpacml-experiments-")
		if err != nil {
			fatal(err)
		}
		defer os.RemoveAll(tmp)
		dir = tmp
	} else if err := os.MkdirAll(dir, 0o755); err != nil {
		fatal(err)
	}

	all := *table == "" && *figure == ""
	w := os.Stdout

	if all || *table == "1" {
		experiments.WriteTable1(w, scale)
		fmt.Fprintln(w)
	}
	if all || *table == "2" {
		experiments.WriteTable2(w, scale)
		fmt.Fprintln(w)
	}
	if all || *table == "3" {
		rows, err := experiments.Table3(dir, scale, opt)
		if err != nil {
			fatal(err)
		}
		experiments.WriteTable3(w, rows)
		fmt.Fprintln(w)
	}
	if all || *table == "4" {
		experiments.WriteTable4(w, scale)
		fmt.Fprintln(w)
	}
	if all || *table == "5" {
		experiments.WriteTable5(w)
		fmt.Fprintln(w)
	}

	var bestResults []experiments.EvalResult
	if all || *figure == "5" || *figure == "6" {
		rows, best, err := experiments.Figure5(dir, scale, opt, *sweep)
		if err != nil {
			fatal(err)
		}
		bestResults = best
		if all || *figure == "5" {
			experiments.WriteFigure5(w, rows)
			fmt.Fprintln(w)
		}
	}
	if all || *figure == "6" {
		experiments.WriteFigure6(w, experiments.Figure6(bestResults))
		fmt.Fprintln(w)
	}
	if all || *figure == "7" {
		pts, baseline, err := experiments.Figure7(dir, scale, opt, *sweep)
		if err != nil {
			fatal(err)
		}
		experiments.WriteFigure7(w, pts, baseline)
		fmt.Fprintln(w)
	}
	for _, panel := range []struct{ flag, bench string }{
		{"8a", "minibude"}, {"8b", "binomial"}, {"8c", "bonds"},
	} {
		if all || *figure == panel.flag || *figure == "8" {
			pts, err := experiments.Figure8(dir, scale, opt, panel.bench, *sweep)
			if err != nil {
				fatal(err)
			}
			experiments.WriteFigure8(w, panel.bench, pts)
			fmt.Fprintln(w)
		}
	}
	if all || *figure == "9" {
		spinup, window := 20, 10
		if *full {
			spinup, window = 100, 40
		}
		res, err := experiments.Figure9(dir, scale, opt, spinup, window)
		if err != nil {
			fatal(err)
		}
		experiments.WriteFigure9(w, res)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "hpacml-experiments:", err)
	os.Exit(1)
}
