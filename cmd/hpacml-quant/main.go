// hpacml-quant fits the int8 post-training calibration of a trained
// surrogate from its collected database: per-segment activation ranges
// observed on captured inputs, gated against the float64 reference on a
// held-out split, and saved as a ".quant" sidecar beside the model so
// engines running with int8 inference (quant(int8) directives,
// hpacml-serve -int8) find it automatically. The gate is mandatory —
// when the quantized model cannot reproduce the float64 outputs within
// -rtol on the holdout, no sidecar is written and the serving path
// stays in wide precision. Run it after hpacml-train, on the same
// database.
//
// Usage:
//
//	hpacml-quant -db data/binomial.gh5 -region binomial \
//	    -model models/binomial.gmod -mode percentile -quantile 0.001
//	hpacml-quant -db data/binomial.gh5 -region binomial \
//	    -model models/binomial.gmod -rtol 0.02 -out ranges.quant
package main

import (
	"flag"
	"fmt"
	"os"

	hpacml "repro"

	"repro/internal/nn"
	"repro/internal/telemetry"
)

func main() {
	db := flag.String("db", "", "input database path (.gh5, all shards merged)")
	region := flag.String("region", "", "region group to read inputs from (the benchmark/region name)")
	model := flag.String("model", "", "model to quantize; the sidecar is written to <model>.quant")
	out := flag.String("out", "", "explicit sidecar output path (overrides -model's naming convention)")
	mode := flag.String("mode", nn.QuantMaxAbs, "activation range mode: maxabs or percentile")
	quantile := flag.Float64("quantile", 0.001, "tail fraction trimmed per side in percentile mode")
	rtol := flag.Float64("rtol", 0.05, "accuracy gate: max mean relative L2 of int8 vs float64 on held-out captures")
	holdout := flag.Float64("holdout", 0.2, "trailing fraction of capture rows held out for the gate")
	version := flag.Bool("version", false, "print version and exit")
	flag.Parse()
	if *version {
		fmt.Println(telemetry.VersionString("hpacml-quant"))
		return
	}

	if *db == "" || *region == "" || *model == "" {
		fmt.Fprintln(os.Stderr, "hpacml-quant: -db, -region, and -model are required")
		flag.Usage()
		os.Exit(2)
	}
	path := *out
	if path == "" {
		path = nn.QuantPath(*model)
	}

	calib, err := hpacml.FitQuantFromDB(*db, *region, *model, hpacml.QuantFitConfig{
		Mode: *mode, Q: *quantile, RTol: *rtol, Holdout: *holdout,
	})
	if err != nil {
		fatal(err)
	}
	if err := calib.SaveQuant(path); err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "hpacml-quant: calibrated %d segments (%d -> %d, mode %s), gate %.4g <= rtol %g, %s -> %s\n",
		calib.Segments(), calib.InDim, calib.OutDim, *mode, calib.GateErr, calib.GateRTol, *db, path)
	for s, r := range calib.Preacts {
		fmt.Fprintf(os.Stderr, "hpacml-quant:   segment %d: input [%g, %g], pre-activation [%g, %g]\n",
			s, calib.Bounds[s].Lo, calib.Bounds[s].Hi, r.Lo, r.Hi)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "hpacml-quant:", err)
	os.Exit(1)
}
