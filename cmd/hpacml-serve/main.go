// hpacml-serve hosts trained surrogates behind the dynamic micro-batching
// HTTP API (internal/serve): many concurrent single-invocation clients are
// coalesced into Region.ExecuteBatch calls over a pool of replica regions,
// with checksum-based hot reload when a model file is retrained in place.
//
// Serve one or more .gmod models:
//
//	hpacml-serve -addr :8080 -model binomial=models/binomial.gmod \
//	    -max-batch 32 -max-delay 2ms -workers 2 -reload 2s
//
// Or act as the load generator against a running server, writing the
// shared results schema (the same one hpacml-eval -json emits):
//
//	hpacml-serve -loadgen -target http://127.0.0.1:8080 \
//	    -loadgen-model binomial -rps 0 -duration 5s -concurrency 32 \
//	    -wire both -out BENCH_serve.json
//
// -wire selects the client protocol: json (default), binary (the
// length-prefixed frame wire), or both — a JSON baseline run followed
// by a binary run, published as one record with before/after p50/p99
// and records/sec. Servers started with -f32 run inference in single
// precision (see the f32(on) directive clause).
//
// Applications reach a hosted model from their own annotated regions by
// swapping the model path for a model URI — model("http://host:8080/binomial")
// — which selects the runtime's remote engine (with accurate-path
// fallback) instead of in-process inference; see examples/remote.
//
// The server also hosts capture ingest: -capture name=path registers a
// server-owned sharded .gh5 database behind POST /v1/capture, and
// collection regions feed it by writing the matching URI in their db()
// clause — db("http://host:8080/name") — so many distributed ranks
// build one training database; see examples/capture.
//
// With -retrain-every N (or -retrain-max-age) the server closes the
// loop: a continuous-learning controller (internal/learner) watches
// each capture database, and once N new records have been ingested it
// snapshots them, retrains a candidate from the published weights in
// the background, shadow-gates it on held-out captures (reject unless
// candidate error <= published error + -retrain-rtol), and publishes
// only passing candidates through the checksum hot-reload — recording
// every attempt in a .lineage.json sidecar served by /v1/models.
// -learn model=db pairs a model with its capture feed (auto-paired
// when exactly one of each is registered); POST
// /v1/models/{name}/rollback restores the parent generation. The
// loadgen's -capture-db flag feeds the same loop from served traffic.
//
// Observability: GET /metrics serves the Prometheus text exposition of
// the serving pipeline (request/batch/queue/latency/reload/capture and
// trust-router series plus build info), /healthz reports build and
// uptime, and every request carries an X-Request-ID (honored from the
// client or minted) that shows up in structured logs and error bodies.
// -log-level debug logs every request with its per-stage timings;
// -slow-request bounds the warn threshold; -pprof-addr opens a
// localhost-only admin listener with net/http/pprof and a second
// /metrics. -version prints build metadata and exits.
//
// The server exits 0 on SIGINT/SIGTERM after draining queued requests —
// the clean shutdown the CI smoke step asserts.
package main

import (
	"context"
	"flag"
	"fmt"
	"log/slog"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/h5"
	"repro/internal/learner"
	"repro/internal/nn"
	"repro/internal/serve"
	"repro/internal/telemetry"
)

// modelFlags collects repeated -model name=path[,path2,...][:in:out]
// values. A comma-separated path list registers a deep-ensemble model
// set: the first path is the primary, the rest are ensemble members,
// and the server responds with the member-mean prediction.
type modelFlags []serve.ModelSpec

func (m *modelFlags) String() string { return fmt.Sprintf("%v", []serve.ModelSpec(*m)) }

func (m *modelFlags) Set(v string) error {
	name, rest, ok := strings.Cut(v, "=")
	if !ok || name == "" || rest == "" {
		return fmt.Errorf("want name=path[,path2,...][:in:out], got %q", v)
	}
	spec := serve.ModelSpec{Name: name, Path: rest}
	if parts := strings.Split(rest, ":"); len(parts) == 3 {
		spec.Path = parts[0]
		if _, err := fmt.Sscanf(parts[1]+" "+parts[2], "%d %d", &spec.In, &spec.Out); err != nil {
			return fmt.Errorf("bad dims in %q: %v", v, err)
		}
	}
	if members := strings.Split(spec.Path, ","); len(members) > 1 {
		for _, p := range members {
			if p == "" {
				return fmt.Errorf("empty ensemble member path in %q", v)
			}
		}
		spec.Path = members[0]
		spec.Ensemble = members[1:]
	}
	*m = append(*m, spec)
	return nil
}

// learnFlags collects repeated -learn model=db values pairing a served
// model with the capture database that retrains it.
type learnFlags []learnPair

type learnPair struct{ model, db string }

func (l *learnFlags) String() string { return fmt.Sprintf("%v", []learnPair(*l)) }

func (l *learnFlags) Set(v string) error {
	model, db, ok := strings.Cut(v, "=")
	if !ok || model == "" || db == "" {
		return fmt.Errorf("want model=db, got %q", v)
	}
	*l = append(*l, learnPair{model: model, db: db})
	return nil
}

// captureFlags collects repeated -capture name=path values.
type captureFlags []serve.CaptureSpec

func (c *captureFlags) String() string { return fmt.Sprintf("%v", []serve.CaptureSpec(*c)) }

func (c *captureFlags) Set(v string) error {
	name, path, ok := strings.Cut(v, "=")
	if !ok || name == "" || path == "" {
		return fmt.Errorf("want name=path, got %q", v)
	}
	*c = append(*c, serve.CaptureSpec{Name: name, Path: path})
	return nil
}

func main() {
	var models modelFlags
	flag.Var(&models, "model", "model to serve as name=path[,path2,...][:in:out]; repeatable. Comma-separated paths form a deep-ensemble model set; dims are inferred from dense-first .gmod files")
	var captures captureFlags
	flag.Var(&captures, "capture", "capture database to ingest into as name=path; repeatable. Collection regions reach it with db(\"http://host:port/name\")")
	captureShard := flag.Int("capture-shard-records", 0, "rotate each capture database to a fresh shard every N ingested records (0 = single file)")
	addr := flag.String("addr", ":8080", "listen address")
	maxBatch := flag.Int("max-batch", 32, "max invocations coalesced into one ExecuteBatch call")
	maxDelay := flag.Duration("max-delay", 2*time.Millisecond, "max wait for a batch to fill before cutting it")
	queueCap := flag.Int("queue", 0, "bounded queue capacity per model (0 = 8*max-batch); overflow rejects with 429")
	workers := flag.Int("workers", 2, "replica regions per model")
	reload := flag.Duration("reload", 2*time.Second, "model-file checksum poll interval for hot reload (0 disables)")
	f32 := flag.Bool("f32", false, "run inference in single precision: model weights convert to float32 once at load and batches skip the float64 round trip (unsupported models stay float64)")
	int8Flag := flag.Bool("int8", false, "run inference through the quantized int8 path: each model's .quant calibration sidecar (written by hpacml-quant) is loaded beside its .gmod; models without a gate-passing sidecar stay in wide precision")
	logLevel := flag.String("log-level", "info", "log verbosity: debug (per-request lines), info, warn, or error")
	slowReq := flag.Duration("slow-request", 0, "log requests slower than this at warn even below -log-level debug (0 = the handler default, 250ms)")
	pprofAddr := flag.String("pprof-addr", "", "admin listen address for net/http/pprof profiling and a second /metrics endpoint (empty disables; bind it to localhost)")
	version := flag.Bool("version", false, "print version and exit")

	var learns learnFlags
	flag.Var(&learns, "learn", "pair a model with its capture feed as model=db for continuous learning; repeatable (default: auto-pair when exactly one -model and one -capture are given)")
	retrainEvery := flag.Int("retrain-every", 0, "retrain a candidate once this many new capture records have been ingested since the last attempt (0 disables the count trigger)")
	retrainMaxAge := flag.Duration("retrain-max-age", 0, "retrain once any pending capture record is this old, regardless of count (0 disables the age trigger)")
	retrainMin := flag.Int("retrain-min", 0, "minimum total captured records before any retrain (0 = learner default, 8)")
	retrainInterval := flag.Duration("retrain-interval", 5*time.Second, "continuous-learning trigger poll interval")
	retrainRtol := flag.Float64("retrain-rtol", 0.05, "shadow gate slack: publish a candidate iff its held-out relative error <= the published model's + this")
	retrainHoldout := flag.Float64("retrain-holdout", 0.25, "fraction of the capture snapshot held out for the shadow gate (never trained on)")
	retrainEpochs := flag.Int("retrain-epochs", 20, "training epochs per retrain (warm-started from the published weights)")

	loadgen := flag.Bool("loadgen", false, "run as load generator instead of server")
	target := flag.String("target", "http://127.0.0.1:8080", "loadgen: server base URL")
	lgModel := flag.String("loadgen-model", "", "loadgen: model to exercise (default: the server's first)")
	rps := flag.Float64("rps", 0, "loadgen: target requests/sec across all clients (0 = closed loop)")
	duration := flag.Duration("duration", 5*time.Second, "loadgen: run length")
	concurrency := flag.Int("concurrency", 16, "loadgen: concurrent clients")
	out := flag.String("out", "", "loadgen: result JSON path (default stdout)")
	seed := flag.Int64("seed", 29, "loadgen: input-vector seed")
	wire := flag.String("wire", "json", "loadgen: client protocol — json, binary (length-prefixed frames), or both (JSON baseline then binary, one record)")
	lgDtype := flag.String("dtype", "f64", "loadgen: binary-wire frame element encoding — f64, f32, or int8 (int8 sends integer-valued inputs; ignored under -wire json)")
	lgCapture := flag.String("capture-db", "", "loadgen: ship every completed inference back to this server-side capture database (the closed-loop retraining feed; empty disables)")
	flag.Parse()

	if *version {
		fmt.Println(telemetry.VersionString("hpacml-serve"))
		return
	}
	var level slog.Level
	if err := level.UnmarshalText([]byte(*logLevel)); err != nil {
		fatal(fmt.Errorf("bad -log-level %q: %w", *logLevel, err))
	}
	log := slog.New(slog.NewTextHandler(os.Stderr, &slog.HandlerOptions{Level: level}))

	if *loadgen {
		rec, err := serve.RunLoadGen(serve.LoadGenConfig{
			Target:      *target,
			Model:       *lgModel,
			RPS:         *rps,
			Duration:    *duration,
			Concurrency: *concurrency,
			Seed:        *seed,
			Wire:        *wire,
			Dtype:       *lgDtype,
			CaptureDB:   *lgCapture,
		})
		if err != nil {
			fatal(err)
		}
		if err := rec.WriteFile(*out); err != nil {
			fatal(err)
		}
		if base := rec.Serving.Baseline; base != nil {
			fmt.Fprintf(os.Stderr, "loadgen[%s]: %d completed (%.0f rec/s), p50 %.2fms, p99 %.2fms\n",
				base.Wire, base.Completed, base.RecordsPerSec, base.LatencyP50Ms, base.LatencyP99Ms)
		}
		sv := rec.Serving
		fmt.Fprintf(os.Stderr, "loadgen[%s]: %d completed (%.0f rec/s), %d rejected, %d errors, mean batch %.1f, p50 %.2fms, p99 %.2fms\n",
			sv.Wire, sv.Completed, sv.RecordsPerSec, sv.Rejected, sv.Errors, sv.MeanBatch, sv.LatencyP50Ms, sv.LatencyP99Ms)
		if sv.CapturedRecords > 0 {
			fmt.Fprintf(os.Stderr, "loadgen: captured %d records into %q\n", sv.CapturedRecords, *lgCapture)
		}
		return
	}

	if len(models) == 0 && len(captures) == 0 {
		fmt.Fprintln(os.Stderr, "hpacml-serve: at least one -model name=path (or -capture name=path) is required")
		flag.Usage()
		os.Exit(2)
	}
	build := telemetry.Build()
	log.Info("hpacml-serve starting", "version", build.Version, "revision", build.Revision, "go", build.GoVersion)
	for i := range captures {
		captures[i].ShardRecords = *captureShard
	}
	if *f32 {
		for i := range models {
			models[i].F32 = true
		}
	}
	if *int8Flag {
		for i := range models {
			models[i].I8 = true
		}
	}
	s, err := serve.NewServer(serve.Config{
		MaxBatch:       *maxBatch,
		MaxDelay:       *maxDelay,
		QueueCap:       *queueCap,
		Workers:        *workers,
		ReloadInterval: *reload,
		CaptureDBs:     captures,
	}, models...)
	if err != nil {
		fatal(err)
	}

	handlerOpts := []serve.HandlerOption{serve.WithLogger(log)}
	if *slowReq > 0 {
		handlerOpts = append(handlerOpts, serve.WithSlowRequest(*slowReq))
	}

	// Continuous learning: pair each model with its capture feed and
	// hand the controller the server's snapshot/reload hooks. The
	// controller owns the background retrain goroutine; the handler gets
	// it for /v1/models lineage, /v1/stats learners, and rollback.
	var ctl *learner.Controller
	if *retrainEvery > 0 || *retrainMaxAge > 0 {
		pairs := learns
		if len(pairs) == 0 {
			if len(models) == 1 && len(captures) == 1 {
				pairs = learnFlags{{model: models[0].Name, db: captures[0].Name}}
			} else {
				fatal(fmt.Errorf("-retrain-every/-retrain-max-age need explicit -learn model=db pairs unless exactly one -model and one -capture are registered"))
			}
		}
		specByName := make(map[string]serve.ModelSpec, len(models))
		for _, spec := range models {
			specByName[spec.Name] = spec
		}
		dbByName := make(map[string]bool, len(captures))
		for _, cs := range captures {
			dbByName[cs.Name] = true
		}
		var pols []learner.Policy
		for _, pr := range pairs {
			spec, ok := specByName[pr.model]
			if !ok {
				fatal(fmt.Errorf("-learn %s=%s names an unregistered model", pr.model, pr.db))
			}
			if !dbByName[pr.db] {
				fatal(fmt.Errorf("-learn %s=%s names an unregistered capture db", pr.model, pr.db))
			}
			model, db := pr.model, pr.db
			pols = append(pols, learner.Policy{
				Model:        model,
				Paths:        append([]string{spec.Path}, spec.Ensemble...),
				RetrainEvery: *retrainEvery,
				MaxAge:       *retrainMaxAge,
				MinRecords:   *retrainMin,
				HoldoutFrac:  *retrainHoldout,
				Rtol:         *retrainRtol,
				Train:        nn.TrainConfig{Epochs: *retrainEpochs},
				Snapshot:     func() (*h5.File, error) { return s.SnapshotCaptureDB(db) },
				Reload:       func() error { return s.ReloadModel(model) },
			})
			log.Info("continuous learning enabled", "model", model, "capture_db", db,
				"retrain_every", *retrainEvery, "max_age", *retrainMaxAge, "rtol", *retrainRtol)
		}
		var lerr error
		ctl, lerr = learner.New(learner.Config{
			Interval: *retrainInterval,
			Logger:   log,
			Metrics:  s.Metrics(),
		}, pols...)
		if lerr != nil {
			fatal(lerr)
		}
		handlerOpts = append(handlerOpts, serve.WithLearner(ctl))
	}
	httpSrv := &http.Server{Addr: *addr, Handler: serve.NewHandler(s, handlerOpts...)}
	errc := make(chan error, 1)
	go func() { errc <- httpSrv.ListenAndServe() }()
	if *pprofAddr != "" {
		// The admin mux is separate from the serving mux on purpose:
		// pprof exposes heap contents and must never ride a port that is
		// reachable by inference clients. Explicit registrations, not
		// http.DefaultServeMux, so nothing else leaks onto the port.
		admin := http.NewServeMux()
		admin.HandleFunc("/debug/pprof/", pprof.Index)
		admin.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		admin.HandleFunc("/debug/pprof/profile", pprof.Profile)
		admin.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		admin.HandleFunc("/debug/pprof/trace", pprof.Trace)
		admin.Handle("/metrics", telemetry.Handler(s.Metrics()))
		go func() {
			log.Info("admin endpoint listening", "addr", *pprofAddr)
			if err := http.ListenAndServe(*pprofAddr, admin); err != nil {
				log.Error("admin endpoint failed", "addr", *pprofAddr, "err", err)
			}
		}()
	}
	uriHost := *addr
	if strings.HasPrefix(uriHost, ":") {
		uriHost = "<this-host>" + uriHost
	}
	for _, info := range s.Models() {
		// The model-URI attribute is the annotation form regions use to
		// execute against this server: the same clause as the local
		// case, with the path swapped for the URI (the runtime's remote
		// engine takes it from there).
		log.Info("serving model",
			"model", info.Name, "path", info.Path,
			"in", info.InDim, "out", info.OutDim,
			"replicas", info.Replicas, "ensemble", info.Ensemble,
			"model_uri", fmt.Sprintf("http://%s/%s", uriHost, info.Name))
	}
	for _, cs := range s.CaptureSnapshot() {
		// The db-URI attribute is what collection regions write in their
		// db() clause to feed this database.
		log.Info("ingesting capture db",
			"db", cs.Name, "path", cs.Path,
			"db_uri", fmt.Sprintf("http://%s/%s", uriHost, cs.Name))
	}
	log.Info("listening", "addr", *addr, "max_batch", *maxBatch, "max_delay", *maxDelay)

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-errc:
		fatal(err)
	case sig := <-sigc:
		log.Info("draining", "signal", sig.String())
	}
	// The learner stops first: its Stop hook cancels any in-flight
	// training at the next minibatch, and a candidate interrupted here
	// is never gated or published — SIGTERM cannot ship a half-vetted
	// model.
	if ctl != nil {
		ctl.Close()
	}
	// Shutdown (not Close) lets handlers blocked in Infer write their
	// responses as the workers drain — no accepted request loses its
	// reply. The coalescer's own drain follows.
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := httpSrv.Shutdown(ctx); err != nil {
		log.Error("shutdown", "err", err)
	}
	if err := s.Close(); err != nil {
		fatal(err)
	}
	for _, snap := range s.Snapshot() {
		log.Info("model served",
			"model", snap.Name, "completed", snap.Completed,
			"batches", snap.Batches, "mean_batch", snap.MeanBatch,
			"rejected", snap.Rejected)
	}
	for _, cs := range s.CaptureSnapshot() {
		log.Info("capture db ingested",
			"db", cs.Name, "records", cs.Records, "batches", cs.Batches,
			"shards", cs.Shards, "errors", cs.Errors)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "hpacml-serve:", err)
	os.Exit(1)
}
