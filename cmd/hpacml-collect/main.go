// hpacml-collect runs one benchmark with its HPAC-ML region in data
// collection mode and writes the training database (.gh5) — phase one of
// the paper's workflow.
//
// Usage:
//
//	hpacml-collect -benchmark binomial -db data/binomial.gh5 -runs 10 [-full]
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/experiments"
)

func main() {
	benchmark := flag.String("benchmark", "", "benchmark name: minibude, binomial, bonds, miniweather, particlefilter")
	db := flag.String("db", "", "output database path (.gh5)")
	runs := flag.Int("runs", 10, "number of region invocations to record")
	full := flag.Bool("full", false, "use campaign-scale problem sizes")
	seed := flag.Int64("seed", 29, "random seed")
	flag.Parse()

	if *benchmark == "" || *db == "" {
		fmt.Fprintln(os.Stderr, "hpacml-collect: -benchmark and -db are required")
		flag.Usage()
		os.Exit(2)
	}
	h, err := findHarness(*benchmark, *full)
	if err != nil {
		fatal(err)
	}
	if err := os.MkdirAll(filepath.Dir(*db), 0o755); err != nil {
		fatal(err)
	}
	opt := experiments.QuickOptions()
	if *full {
		opt = experiments.FullOptions()
	}
	opt.CollectRuns = *runs
	opt.Seed = *seed
	if err := h.Collect(*db, opt); err != nil {
		fatal(err)
	}
	fmt.Printf("collected %d invocations of %s into %s\n", *runs, *benchmark, *db)
}

func findHarness(name string, full bool) (experiments.Harness, error) {
	scale := experiments.ScaleTest
	if full {
		scale = experiments.ScaleFull
	}
	for _, h := range experiments.Registry(scale) {
		if h.Info().Name == name {
			return h, nil
		}
	}
	return nil, fmt.Errorf("unknown benchmark %q", name)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "hpacml-collect:", err)
	os.Exit(1)
}
