// hpacml-collect runs one benchmark with its HPAC-ML region in data
// collection mode and writes the training database — phase one of the
// paper's workflow, driven through the pluggable capture pipeline:
// asynchronous sharded local files by default, a remote hpacml-serve
// ingest endpoint when -db is an http(s):// capture URI, optionally
// thinned by a sampling policy.
//
// Usage:
//
//	hpacml-collect -benchmark binomial -db data/binomial.gh5 -runs 10 [-full]
//	hpacml-collect -benchmark binomial -db data/binomial.gh5 -runs 1000 \
//	    -shard-records 100 -sample-every 5 -out BENCH_collect.json
//	hpacml-collect -benchmark binomial -db http://head:8080/binomial -runs 100
//
// On exit the capture report is printed (records written, shards,
// dropped samples, flush failures) and the process exits non-zero when
// the sink dropped records or failed to persist them — an incomplete
// training set must fail the collection job, not surface at training
// time.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"repro/internal/directive"
	"repro/internal/experiments"
	"repro/internal/results"
	"repro/internal/telemetry"
)

func main() {
	benchmark := flag.String("benchmark", "", "benchmark name: minibude, binomial, bonds, miniweather, particlefilter")
	db := flag.String("db", "", "output database: a .gh5 path, or an http(s)://host/db-name capture URI of a running hpacml-serve")
	runs := flag.Int("runs", 10, "number of region invocations to record")
	full := flag.Bool("full", false, "use campaign-scale problem sizes")
	seed := flag.Int64("seed", 29, "random seed")

	shardRecords := flag.Int("shard-records", 0, "rotate the local database to a fresh shard every N records (0 = single file)")
	queueCap := flag.Int("queue", 0, "capture queue bound in records (0 = default 256)")
	drop := flag.Bool("drop", false, "drop records when the capture queue is full instead of blocking the solver")
	flushEvery := flag.Duration("flush-every", 0, "periodic capture flush interval (0 = default 1s)")
	sampleEvery := flag.Int("sample-every", 0, "keep every N-th invocation (capture(every:N) policy)")
	sampleFrac := flag.Float64("sample-frac", 0, "keep each invocation with this probability (capture(frac:F) policy)")
	out := flag.String("out", "", "write the collection report as shared-schema JSON (internal/results) to this path")
	version := flag.Bool("version", false, "print version and exit")
	flag.Parse()
	if *version {
		fmt.Println(telemetry.VersionString("hpacml-collect"))
		return
	}

	if *benchmark == "" || *db == "" {
		fmt.Fprintln(os.Stderr, "hpacml-collect: -benchmark and -db are required")
		flag.Usage()
		os.Exit(2)
	}
	if err := directive.ValidateDBRef(*db); err != nil {
		fatal(err)
	}
	h, err := findHarness(*benchmark, *full)
	if err != nil {
		fatal(err)
	}
	if !directive.IsRemoteDB(*db) {
		if err := os.MkdirAll(filepath.Dir(*db), 0o755); err != nil {
			fatal(err)
		}
	}
	opt := experiments.QuickOptions()
	if *full {
		opt = experiments.FullOptions()
	}
	opt.CollectRuns = *runs
	opt.Seed = *seed
	opt.Capture.ShardRecords = *shardRecords
	opt.Capture.QueueCap = *queueCap
	opt.Capture.DropWhenFull = *drop
	opt.Capture.FlushEvery = *flushEvery
	opt.Capture.Every = *sampleEvery
	opt.Capture.Frac = *sampleFrac
	opt.Capture.Seed = *seed

	start := time.Now()
	rep, err := h.Collect(*db, opt)
	if err != nil {
		fatal(err)
	}

	fmt.Printf("collected %d invocations of %s into %s in %.2fs\n",
		rep.Invocations, *benchmark, *db, time.Since(start).Seconds())
	fmt.Printf("capture: %d records written", rep.Records)
	if rep.Sampled > 0 {
		fmt.Printf(" (%d sampled out)", rep.Sampled)
	}
	if rep.Shards > 0 {
		fmt.Printf(", %d shard(s)", rep.Shards)
	}
	if rep.RemoteRecords > 0 {
		fmt.Printf(", %d ingested remotely", rep.RemoteRecords)
	}
	fmt.Printf(", %d dropped, %d flushes (%d failed), %d write errors\n",
		rep.Dropped, rep.Flushes, rep.FlushErrors, rep.WriteErrors)

	if *out != "" {
		rec := &results.Record{
			Tool:      "hpacml-collect",
			Benchmark: *benchmark,
			Collect: &results.Collect{
				Runs:          rep.Invocations,
				DB:            *db,
				Records:       rep.Records,
				Sampled:       rep.Sampled,
				Shards:        rep.Shards,
				Dropped:       rep.Dropped,
				Flushes:       rep.Flushes,
				FlushErrors:   rep.FlushErrors,
				WriteErrors:   rep.WriteErrors,
				RemoteRecords: rep.RemoteRecords,
			},
		}
		if err := rec.WriteFile(*out); err != nil {
			fatal(err)
		}
	}
	if rep.Failed() {
		fmt.Fprintf(os.Stderr, "hpacml-collect: capture pipeline lost records (%d dropped, %d flush failures, %d write errors)\n",
			rep.Dropped, rep.FlushErrors, rep.WriteErrors)
		os.Exit(1)
	}
}

func findHarness(name string, full bool) (experiments.Harness, error) {
	scale := experiments.ScaleTest
	if full {
		scale = experiments.ScaleFull
	}
	for _, h := range experiments.Registry(scale) {
		if h.Info().Name == name {
			return h, nil
		}
	}
	return nil, fmt.Errorf("unknown benchmark %q", name)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "hpacml-collect:", err)
	os.Exit(1)
}
