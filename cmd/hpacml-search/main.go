// hpacml-search runs the paper's nested, two-level, multi-objective
// Bayesian-optimization campaign for one benchmark (§V-C): the outer
// level searches the Table IV architecture space for models that jointly
// minimize inference latency and validation error; the inner level tunes
// the Table V hyperparameters per architecture. It prints the Pareto
// front and the knee-point model.
//
// Usage:
//
//	hpacml-search -benchmark bonds -outer 20 -inner 8 -out results/
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/bo"
	"repro/internal/experiments"
	"repro/internal/telemetry"
	"repro/internal/workflow"
)

func main() {
	benchmark := flag.String("benchmark", "", "benchmark name, or 'all' for the full campaign")
	outer := flag.Int("outer", 20, "outer-level (architecture) iterations; the paper uses 100")
	inner := flag.Int("inner", 8, "inner-level (hyperparameter) iterations; the paper uses 30")
	patience := flag.Int("patience", 5, "outer early-stopping patience (paper: 5)")
	epochs := flag.Int("epochs", 60, "training epochs per trial")
	out := flag.String("out", "search-out", "working directory for databases and models")
	full := flag.Bool("full", false, "use campaign-scale problem sizes")
	seed := flag.Int64("seed", 29, "random seed")
	parallelism := flag.Int("parallel", 1, "benchmarks searched in parallel when -benchmark all")
	innerWorkers := flag.Int("inner-workers", 1, "concurrent training runs during each inner search's random-initialization phase (>1 adds contention noise to measured latencies)")
	version := flag.Bool("version", false, "print version and exit")
	flag.Parse()
	if *version {
		fmt.Println(telemetry.VersionString("hpacml-search"))
		return
	}

	if *benchmark == "" {
		fmt.Fprintln(os.Stderr, "hpacml-search: -benchmark is required")
		flag.Usage()
		os.Exit(2)
	}
	scale := experiments.ScaleTest
	if *full {
		scale = experiments.ScaleFull
	}
	if err := os.MkdirAll(*out, 0o755); err != nil {
		fatal(err)
	}
	opt := experiments.QuickOptions()
	opt.TrainEpochs = *epochs
	opt.Seed = *seed
	cfg := bo.NestedConfig{
		OuterIters:    *outer,
		InnerIters:    *inner,
		OuterPatience: *patience,
		Seed:          *seed,
		InnerWorkers:  *innerWorkers,
	}

	var targets []experiments.Harness
	for _, h := range experiments.Registry(scale) {
		if *benchmark == "all" || h.Info().Name == *benchmark {
			targets = append(targets, h)
		}
	}
	if len(targets) == 0 {
		fatal(fmt.Errorf("unknown benchmark %q", *benchmark))
	}

	// The campaign is orchestrated like the paper's Parsl workflow:
	// per-benchmark searches as parallel tasks.
	exec, err := workflow.New(*parallelism)
	if err != nil {
		fatal(err)
	}
	defer exec.Close()
	type outcome struct {
		name string
		res  *bo.NestedResult
	}
	results, err := workflow.Map(exec, len(targets), func(i int) (outcome, error) {
		h := targets[i]
		res, err := experiments.NestedCampaign(h, *out, opt, cfg)
		if err != nil {
			return outcome{}, fmt.Errorf("%s: %w", h.Info().Name, err)
		}
		return outcome{name: h.Info().Name, res: res}, nil
	})
	if err != nil {
		fatal(err)
	}

	total := 0
	for _, oc := range results {
		res := oc.res
		total += res.ModelsEvaluated
		fmt.Printf("\n=== %s: %d models evaluated, %d Pareto-optimal ===\n",
			oc.name, res.ModelsEvaluated, len(res.Pareto))
		for _, tr := range res.Pareto {
			fmt.Printf("  latency %.3gs  val-error %.6g  arch %v\n",
				tr.LatencySec, tr.ValError, renderAssign(tr.Arch))
		}
		fmt.Printf("  knee point: latency %.3gs, val-error %.6g, hyper %v\n",
			res.Best.LatencySec, res.Best.ValError, renderAssign(res.Best.BestHyper))
	}
	fmt.Printf("\ncampaign explored %d models total\n", total)
}

func renderAssign(m map[string]bo.Value) string {
	s := "{"
	first := true
	for k, v := range m {
		if !first {
			s += ", "
		}
		first = false
		if v.IsInt {
			s += fmt.Sprintf("%s=%d", k, v.Int)
		} else {
			s += fmt.Sprintf("%s=%.4g", k, v.Float)
		}
	}
	return s + "}"
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "hpacml-search:", err)
	os.Exit(1)
}
