// hpacml-guard fits the input-domain guardrail of trust-routed
// execution from a collected database: the per-feature quantile
// envelope of everything the surrogate was trained on, saved as a
// sidecar beside the model so regions annotated with trust(domain:on)
// find it automatically. Run it after collection (and typically after
// hpacml-train, on the same database), giving either -model to place
// the sidecar by the naming convention or -out for an explicit path.
//
// Usage:
//
//	hpacml-guard -db data/binomial.gh5 -region binomial \
//	    -model models/binomial.gmod -quantile 0.01 -margin 0.05
//	hpacml-guard -db data/binomial.gh5 -region binomial -out envelope.guard
package main

import (
	"flag"
	"fmt"
	"os"

	hpacml "repro"

	"repro/internal/telemetry"
)

func main() {
	db := flag.String("db", "", "input database path (.gh5, all shards merged)")
	region := flag.String("region", "", "region group to read inputs from (the benchmark/region name)")
	model := flag.String("model", "", "model path the guardrail gates; the sidecar is written to <model>.guard")
	out := flag.String("out", "", "explicit sidecar output path (overrides -model's naming convention)")
	quantile := flag.Float64("quantile", 0.0, "tail fraction trimmed per side (0 = min/max envelope, 0.01 = 1%..99%)")
	margin := flag.Float64("margin", 0.0, "check-time envelope widening, as a fraction of each feature's span")
	version := flag.Bool("version", false, "print version and exit")
	flag.Parse()
	if *version {
		fmt.Println(telemetry.VersionString("hpacml-guard"))
		return
	}

	if *db == "" || *region == "" {
		fmt.Fprintln(os.Stderr, "hpacml-guard: -db and -region are required")
		flag.Usage()
		os.Exit(2)
	}
	path := *out
	if path == "" {
		if *model == "" {
			fmt.Fprintln(os.Stderr, "hpacml-guard: give -model (sidecar goes to <model>.guard) or -out")
			flag.Usage()
			os.Exit(2)
		}
		path = hpacml.GuardrailPath(*model)
	}
	if *margin < 0 {
		fatal(fmt.Errorf("negative margin %g", *margin))
	}

	g, err := hpacml.FitGuardrailFromDB(*db, *region, *quantile)
	if err != nil {
		fatal(err)
	}
	g.Margin = *margin
	if err := g.Save(path); err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "hpacml-guard: fitted %d-feature envelope (quantile %g, margin %g) from %s -> %s\n",
		g.Features(), *quantile, *margin, *db, path)
	for f := 0; f < g.Features() && f < 8; f++ {
		fmt.Fprintf(os.Stderr, "hpacml-guard:   feature %d: [%g, %g]\n", f, g.Lo[f], g.Hi[f])
	}
	if g.Features() > 8 {
		fmt.Fprintf(os.Stderr, "hpacml-guard:   ... %d more features\n", g.Features()-8)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "hpacml-guard:", err)
	os.Exit(1)
}
