// Package hpacml is a Go implementation of the HPAC-ML programming model
// (Fink et al., SC 2024): a directive-based way to embed machine-learning
// surrogates in scientific applications. An application annotates a code
// region with tensor functor, tensor map, and ml directives; the runtime
// then either collects the region's inputs/outputs into a database for
// offline surrogate training, or replaces the region entirely with model
// inference, bridging the application and tensor memory layouts in both
// directions.
//
// Go has no pragma mechanism, so the directives are the same grammar the
// paper's Clang extension parses (Figure 3), provided as strings when the
// region is constructed — the one-time "annotation" a developer writes.
// The wrapped structured block becomes the closure passed to Execute, which
// is exactly the outlined function the HPAC compiler would have produced:
//
//	region, err := hpacml.NewRegion("stencil",
//	    hpacml.Directives(`
//	        #pragma approx tensor functor(ifn: [i, j, 0:5] = (([i-1, j], [i+1, j], [i, j-1:j+2])))
//	        #pragma approx tensor functor(ofn: [i, j, 0:1] = ([i, j]))
//	        #pragma approx tensor map(to: ifn(t[1:N-1, 1:M-1]))
//	        #pragma approx tensor map(from: ofn(tnew[1:N-1, 1:M-1]))
//	        #pragma approx ml(predicated:useModel) in(t) out(tnew) model("m.gmod") db("d.gh5")
//	    `),
//	    hpacml.BindInt("N", n), hpacml.BindInt("M", m),
//	    hpacml.BindArray("t", t, n, m),
//	    hpacml.BindArray("tnew", tnew, n, m),
//	    hpacml.BindPredicate("useModel", func() bool { return infer }),
//	)
//	...
//	err = region.Execute(func() error { doTimestep(t, tnew); return nil })
package hpacml

import (
	"fmt"
	"strings"
	"sync"
	"time"

	"repro/internal/bridge"
	"repro/internal/directive"
	"repro/internal/h5"
	"repro/internal/nn"
	"repro/internal/tensor"
)

// Layout controls how the bridge's LHS tensors are presented to the model.
type Layout int

// Supported model I/O layouts.
const (
	// LayoutFlat flattens the sweep dims into a batch: [entries, features].
	// This is the layout of the paper's MLP benchmarks.
	LayoutFlat Layout = iota
	// LayoutImage2D presents a 2-D sweep as a single image sample:
	// [S0, S1, F] becomes [1, F, S0, S1] (channels from features), the
	// layout of the paper's CNN benchmarks (ParticleFilter).
	LayoutImage2D
	// LayoutChannels presents a 3-D sweep whose leading dim is a channel
	// index: [C, S0, S1, 1] becomes [1, C, S0, S1] (MiniWeather's state
	// variables).
	LayoutChannels
)

// Stats aggregates runtime accounting for one region — the quantities
// behind the paper's Figure 6 (to-tensor / inference / from-tensor split)
// and Table III (collection overhead).
type Stats struct {
	Invocations  int
	Inferences   int
	Collections  int
	AccurateRuns int

	ToTensor   time.Duration
	Inference  time.Duration
	FromTensor time.Duration
	Accurate   time.Duration
	DBWrite    time.Duration
}

// Clone returns a copy of the stats.
func (s Stats) Clone() Stats { return s }

// BridgeOverhead returns (to-tensor + from-tensor) time as a fraction of
// inference-engine time.
func (s Stats) BridgeOverhead() float64 {
	if s.Inference == 0 {
		return 0
	}
	return float64(s.ToTensor+s.FromTensor) / float64(s.Inference)
}

// Region is one annotated code region: its directives, bound application
// memory, bridge plans, and execution-control state.
type Region struct {
	name string

	functors map[string]*directive.FunctorDecl
	maps     []*directive.MapDecl
	ml       *directive.MLDecl

	env        directive.Env
	arrays     map[string]*bridge.Array
	predicates map[string]func() bool

	inPlans  []*bridge.Plan
	outPlans []*bridge.Plan

	inLayout  Layout
	outLayout Layout

	modelPath string
	dbPath    string

	model   *nn.Network
	writer  *h5.Writer
	stats   Stats
	dirSrcs []string // raw directive text, for Table II accounting
	closed  bool
}

// modelCache shares loaded models across regions keyed by path, matching
// the paper's "loads the model file if it has not already been loaded".
var modelCache sync.Map // string -> *nn.Network

// ClearModelCache drops all cached models (used by tests and the
// model-cache ablation benchmark).
func ClearModelCache() { modelCache = sync.Map{} }

// Option configures a Region under construction.
type Option func(*Region) error

// Directives parses a block of directive text (one directive per line,
// backslash continuations allowed) into the region.
func Directives(src string) Option {
	return func(r *Region) error {
		ds, err := directive.ParseAll(src)
		if err != nil {
			return err
		}
		for _, line := range strings.Split(strings.ReplaceAll(src, "\\\n", " "), "\n") {
			line = strings.TrimSpace(line)
			if line != "" && !strings.HasPrefix(line, "//") {
				r.dirSrcs = append(r.dirSrcs, line)
			}
		}
		return r.addDirectives(ds)
	}
}

// Directive adds a single pre-parsed directive.
func Directive(d directive.Directive) Option {
	return func(r *Region) error {
		r.dirSrcs = append(r.dirSrcs, d.String())
		return r.addDirectives([]directive.Directive{d})
	}
}

// BindArray binds application memory under a name referenced by the map
// targets and the ml in/out lists. The memory is aliased, never copied.
func BindArray(name string, data []float64, shape ...int) Option {
	return func(r *Region) error {
		a, err := bridge.NewArray(name, data, shape...)
		if err != nil {
			return err
		}
		if _, dup := r.arrays[name]; dup {
			return fmt.Errorf("hpacml: array %q bound twice", name)
		}
		r.arrays[name] = a
		return nil
	}
}

// BindInt binds an integer variable referenced by concrete slice
// expressions (e.g. N, M).
func BindInt(name string, v int) Option {
	return func(r *Region) error {
		if _, dup := r.env[name]; dup {
			return fmt.Errorf("hpacml: integer %q bound twice", name)
		}
		r.env[name] = v
		return nil
	}
}

// BindPredicate binds a boolean expression name used by predicated ml
// clauses and if clauses. The literals "true" and "false" are predefined.
func BindPredicate(name string, fn func() bool) Option {
	return func(r *Region) error {
		if fn == nil {
			return fmt.Errorf("hpacml: nil predicate %q", name)
		}
		r.predicates[name] = fn
		return nil
	}
}

// WithModel overrides the model path from the ml clause.
func WithModel(path string) Option {
	return func(r *Region) error { r.modelPath = path; return nil }
}

// WithDB overrides the database path from the ml clause.
func WithDB(path string) Option {
	return func(r *Region) error { r.dbPath = path; return nil }
}

// InputLayout selects how gathered inputs are presented to the model.
func InputLayout(l Layout) Option {
	return func(r *Region) error { r.inLayout = l; return nil }
}

// OutputLayout selects how model outputs map back to the bridge.
func OutputLayout(l Layout) Option {
	return func(r *Region) error { r.outLayout = l; return nil }
}

// NewRegion builds a region from directives and bindings, performing all
// semantic analysis and bridge-plan construction up front so Execute is
// cheap and cannot fail on layout grounds.
func NewRegion(name string, opts ...Option) (*Region, error) {
	r := &Region{
		name:       name,
		functors:   make(map[string]*directive.FunctorDecl),
		env:        make(directive.Env),
		arrays:     make(map[string]*bridge.Array),
		predicates: make(map[string]func() bool),
	}
	for _, opt := range opts {
		if err := opt(r); err != nil {
			return nil, fmt.Errorf("hpacml: region %q: %w", name, err)
		}
	}
	if err := r.finalize(); err != nil {
		return nil, fmt.Errorf("hpacml: region %q: %w", name, err)
	}
	return r, nil
}

func (r *Region) addDirectives(ds []directive.Directive) error {
	for _, d := range ds {
		switch v := d.(type) {
		case *directive.FunctorDecl:
			if _, dup := r.functors[v.Name]; dup {
				return fmt.Errorf("functor %q declared twice", v.Name)
			}
			r.functors[v.Name] = v
		case *directive.MapDecl:
			r.maps = append(r.maps, v)
		case *directive.MLDecl:
			if r.ml != nil {
				return fmt.Errorf("multiple ml directives in one region")
			}
			r.ml = v
		}
	}
	return nil
}

// finalize performs semantic analysis: resolving maps against functors and
// arrays, building bridge plans, and checking the ml clause's data flow.
func (r *Region) finalize() error {
	if r.ml == nil {
		return fmt.Errorf("missing ml directive")
	}
	if r.modelPath == "" {
		r.modelPath = r.ml.Model
	}
	if r.dbPath == "" {
		r.dbPath = r.ml.DB
	}

	// Inline functor applications in the ml clause (fa-exprs) create
	// implicit tensor maps: in() gathers, out() scatters, inout() both.
	maps := append([]*directive.MapDecl(nil), r.maps...)
	for _, app := range r.ml.InApps {
		maps = append(maps, &directive.MapDecl{Dir: directive.To, Functor: app.Functor, Targets: app.Targets})
	}
	for _, app := range r.ml.OutApps {
		maps = append(maps, &directive.MapDecl{Dir: directive.From, Functor: app.Functor, Targets: app.Targets})
	}
	for _, app := range r.ml.InOutApps {
		maps = append(maps,
			&directive.MapDecl{Dir: directive.To, Functor: app.Functor, Targets: app.Targets},
			&directive.MapDecl{Dir: directive.From, Functor: app.Functor, Targets: app.Targets})
	}
	// inout(name) arrays covered only in the to direction derive their
	// from-map from the same functor application (and vice versa) — this
	// is what lets MiniWeather annotate with three directives (Table II).
	for _, n := range r.ml.InOut {
		var to, from *directive.MapDecl
		for _, m := range maps {
			for _, t := range m.Targets {
				if t.Array != n {
					continue
				}
				if m.Dir == directive.To {
					to = m
				} else {
					from = m
				}
			}
		}
		switch {
		case to != nil && from == nil:
			maps = append(maps, &directive.MapDecl{Dir: directive.From, Functor: to.Functor, Targets: to.Targets})
		case from != nil && to == nil:
			maps = append(maps, &directive.MapDecl{Dir: directive.To, Functor: from.Functor, Targets: from.Targets})
		}
	}

	covered := map[string]directive.Direction{}
	for _, m := range maps {
		f, ok := r.functors[m.Functor]
		if !ok {
			return fmt.Errorf("map references undeclared functor %q", m.Functor)
		}
		plan, err := bridge.Build(f, m, r.arrays, r.env)
		if err != nil {
			return err
		}
		if m.Dir == directive.To {
			r.inPlans = append(r.inPlans, plan)
		} else {
			r.outPlans = append(r.outPlans, plan)
		}
		for _, t := range m.Targets {
			covered[t.Array+"/"+m.Dir.String()] = m.Dir
		}
	}

	check := func(names []string, dir string) error {
		for _, n := range names {
			if _, ok := r.arrays[n]; !ok {
				return fmt.Errorf("ml %s(%s): array not bound", dir, n)
			}
			if _, ok := covered[n+"/"+dir]; !ok {
				return fmt.Errorf("ml %s(%s): no tensor map covers this array", dir, n)
			}
		}
		return nil
	}
	if err := check(r.ml.In, "to"); err != nil {
		return err
	}
	if err := check(r.ml.Out, "from"); err != nil {
		return err
	}
	for _, n := range r.ml.InOut {
		if err := check([]string{n}, "to"); err != nil {
			return err
		}
		if err := check([]string{n}, "from"); err != nil {
			return err
		}
	}
	if len(r.inPlans) == 0 {
		return fmt.Errorf("no to-direction tensor map")
	}
	if len(r.outPlans) == 0 {
		return fmt.Errorf("no from-direction tensor map")
	}
	// All input plans must agree on entry count so their features can be
	// concatenated per entry.
	entries := r.inPlans[0].Entries()
	for _, p := range r.inPlans[1:] {
		if p.Entries() != entries {
			return fmt.Errorf("input maps disagree on entry count: %d vs %d", p.Entries(), entries)
		}
	}
	outEntries := r.outPlans[0].Entries()
	for _, p := range r.outPlans[1:] {
		if p.Entries() != outEntries {
			return fmt.Errorf("output maps disagree on entry count: %d vs %d", p.Entries(), outEntries)
		}
	}
	// Predicates referenced by the ml clause must be resolvable.
	if r.ml.Mode == directive.Predicated {
		if _, err := r.evalPredicate(r.ml.Cond); err != nil {
			return err
		}
	}
	if r.ml.If != "" {
		if _, err := r.evalPredicate(r.ml.If); err != nil {
			return err
		}
	}
	return nil
}

func (r *Region) evalPredicate(expr string) (func() bool, error) {
	expr = strings.TrimSpace(expr)
	switch expr {
	case "true", "1":
		return func() bool { return true }, nil
	case "false", "0":
		return func() bool { return false }, nil
	}
	if fn, ok := r.predicates[expr]; ok {
		return fn, nil
	}
	return nil, fmt.Errorf("unbound predicate %q (bind it with BindPredicate)", expr)
}

// Name returns the region name (its group in the collection database).
func (r *Region) Name() string { return r.name }

// NumDirectives returns how many directives annotate the region — the
// paper's Table II metric.
func (r *Region) NumDirectives() int { return len(r.dirSrcs) }

// DirectiveLines returns the raw annotation text, one directive per entry.
func (r *Region) DirectiveLines() []string {
	return append([]string(nil), r.dirSrcs...)
}

// Stats returns a snapshot of the region's runtime accounting.
func (r *Region) Stats() Stats { return r.stats }

// ResetStats zeroes the accounting.
func (r *Region) ResetStats() { r.stats = Stats{} }

// Execute runs the region once. Depending on the ml clause it either
// invokes the accurate path (optionally collecting data) or replaces it
// with surrogate inference. accurate is the outlined structured block.
func (r *Region) Execute(accurate func() error) error {
	if r.closed {
		return fmt.Errorf("hpacml: region %q used after Close", r.name)
	}
	r.stats.Invocations++

	// The if clause gates surrogate use entirely: when false, the region
	// runs the original code with no HPAC-ML involvement (the paper's
	// MiniWeather interleaving control).
	if r.ml.If != "" {
		gate, err := r.evalPredicate(r.ml.If)
		if err != nil {
			return err
		}
		if !gate() {
			return r.runAccurate(accurate)
		}
	}

	switch r.ml.Mode {
	case directive.Infer:
		return r.runInference()
	case directive.Collect:
		return r.runCollection(accurate)
	case directive.Predicated:
		cond := true
		if r.ml.Cond != "" {
			fn, err := r.evalPredicate(r.ml.Cond)
			if err != nil {
				return err
			}
			cond = fn()
		}
		if cond {
			return r.runInference()
		}
		return r.runCollection(accurate)
	}
	return fmt.Errorf("hpacml: unknown ml mode %v", r.ml.Mode)
}

func (r *Region) runAccurate(accurate func() error) error {
	start := time.Now()
	err := accurate()
	r.stats.Accurate += time.Since(start)
	r.stats.AccurateRuns++
	return err
}

// runCollection executes the accurate path, capturing inputs beforehand
// and outputs afterwards into the database along with the region runtime.
// Records are stored in the model's layout, so one region invocation is
// one training sample: [entries, features] rows for flat regions, one
// [1, C, H, W] image for image/channel regions.
func (r *Region) runCollection(accurate func() error) error {
	start := time.Now()
	inputs, err := r.modelInput()
	r.stats.ToTensor += time.Since(start)
	if err != nil {
		return err
	}

	runStart := time.Now()
	if err := accurate(); err != nil {
		return err
	}
	runtime := time.Since(runStart)
	r.stats.Accurate += runtime
	r.stats.AccurateRuns++
	r.stats.Collections++

	start = time.Now()
	outputs, err := r.modelTarget()
	r.stats.FromTensor += time.Since(start)
	if err != nil {
		return err
	}

	start = time.Now()
	defer func() { r.stats.DBWrite += time.Since(start) }()
	if r.dbPath == "" {
		return fmt.Errorf("hpacml: collection without db() clause in region %q", r.name)
	}
	if r.writer == nil {
		w, err := h5.Append(r.dbPath)
		if err != nil {
			return err
		}
		r.writer = w
	}
	if err := r.writer.Write(r.name, "inputs", inputs); err != nil {
		return err
	}
	if err := r.writer.Write(r.name, "outputs", outputs); err != nil {
		return err
	}
	return r.writer.WriteScalar(r.name, "runtime_ns", float64(runtime.Nanoseconds()))
}

// runInference replaces the region with surrogate evaluation: gather
// inputs, apply the model, scatter outputs.
func (r *Region) runInference() error {
	if err := r.ensureModel(); err != nil {
		return err
	}

	start := time.Now()
	x, err := r.modelInput()
	r.stats.ToTensor += time.Since(start)
	if err != nil {
		return err
	}

	start = time.Now()
	y, err := r.model.Forward(x)
	r.stats.Inference += time.Since(start)
	if err != nil {
		return fmt.Errorf("hpacml: inference in region %q: %w", r.name, err)
	}

	start = time.Now()
	err = r.scatterModelOutput(y)
	r.stats.FromTensor += time.Since(start)
	if err != nil {
		return err
	}
	r.stats.Inferences++
	return nil
}

func (r *Region) ensureModel() error {
	if r.model != nil {
		return nil
	}
	if r.modelPath == "" {
		return fmt.Errorf("hpacml: inference without model() clause in region %q", r.name)
	}
	if cached, ok := modelCache.Load(r.modelPath); ok {
		r.model = cached.(*nn.Network)
		return nil
	}
	m, err := nn.Load(r.modelPath)
	if err != nil {
		return err
	}
	modelCache.Store(r.modelPath, m)
	r.model = m
	return nil
}

// InvalidateModel forces the next inference to reload the model from disk
// (e.g. after a new training round wrote the file).
func (r *Region) InvalidateModel() {
	r.model = nil
	modelCache.Delete(r.modelPath)
}

// gatherInputs composes all to-plans into the training-data layout
// [entries, total features].
func (r *Region) gatherInputs() (*tensor.Tensor, error) {
	return gatherFlat(r.inPlans)
}

// gatherOutputs composes all from-plans (reading current application
// memory) into [entries, total features] — used during collection.
func (r *Region) gatherOutputs() (*tensor.Tensor, error) {
	return gatherFlat(r.outPlans)
}

// modelTarget gathers the region's outputs in the layout the model is
// trained to produce: [entries, features] rows for flat regions, a single
// flattened [1, N] sample for image/channel regions (whose decoders end
// in a dense layer).
func (r *Region) modelTarget() (*tensor.Tensor, error) {
	switch r.outLayout {
	case LayoutFlat:
		return r.gatherOutputs()
	case LayoutImage2D, LayoutChannels:
		if len(r.outPlans) != 1 {
			return nil, fmt.Errorf("hpacml: image/channels layout wants exactly one output map, got %d", len(r.outPlans))
		}
		g, err := r.outPlans[0].Gather()
		if err != nil {
			return nil, err
		}
		return g.Reshape(1, g.Len())
	}
	return nil, fmt.Errorf("hpacml: unknown output layout %d", r.outLayout)
}

func gatherFlat(plans []*bridge.Plan) (*tensor.Tensor, error) {
	parts := make([]*tensor.Tensor, len(plans))
	for i, p := range plans {
		g, err := p.Gather()
		if err != nil {
			return nil, err
		}
		flat, err := g.Reshape(p.Entries(), p.Features())
		if err != nil {
			return nil, err
		}
		parts[i] = flat
	}
	if len(parts) == 1 {
		return parts[0], nil
	}
	return tensor.Concat(1, parts...)
}

// modelInput gathers the inputs and lays them out for the model.
func (r *Region) modelInput() (*tensor.Tensor, error) {
	switch r.inLayout {
	case LayoutFlat:
		return r.gatherInputs()
	case LayoutImage2D:
		if len(r.inPlans) != 1 {
			return nil, fmt.Errorf("hpacml: image layout wants exactly one input map, got %d", len(r.inPlans))
		}
		p := r.inPlans[0]
		sweep := p.SweepShape()
		if len(sweep) != 2 {
			return nil, fmt.Errorf("hpacml: image layout wants a 2-D sweep, got %v", sweep)
		}
		g, err := p.Gather()
		if err != nil {
			return nil, err
		}
		// [S0, S1, F] -> [1, F, S0, S1]
		flat, err := g.Reshape(sweep[0], sweep[1], p.Features())
		if err != nil {
			return nil, err
		}
		t1, err := flat.Transpose(0, 2) // [F, S1, S0]
		if err != nil {
			return nil, err
		}
		t2, err := t1.Transpose(1, 2) // [F, S0, S1]
		if err != nil {
			return nil, err
		}
		return t2.Contiguous().Reshape(1, p.Features(), sweep[0], sweep[1])
	case LayoutChannels:
		if len(r.inPlans) != 1 {
			return nil, fmt.Errorf("hpacml: channels layout wants exactly one input map, got %d", len(r.inPlans))
		}
		p := r.inPlans[0]
		sweep := p.SweepShape()
		if len(sweep) != 3 || p.Features() != 1 {
			return nil, fmt.Errorf("hpacml: channels layout wants a 3-D sweep with 1 feature, got %v/%d", sweep, p.Features())
		}
		g, err := p.Gather()
		if err != nil {
			return nil, err
		}
		return g.Reshape(1, sweep[0], sweep[1], sweep[2])
	}
	return nil, fmt.Errorf("hpacml: unknown input layout %d", r.inLayout)
}

// scatterModelOutput converts the model output back to the bridge layout
// and scatters it into application memory.
func (r *Region) scatterModelOutput(y *tensor.Tensor) error {
	switch r.outLayout {
	case LayoutFlat:
		// Split [entries, totalF] across the from-plans in order.
		totalF := 0
		for _, p := range r.outPlans {
			totalF += p.Features()
		}
		entries := r.outPlans[0].Entries()
		if y.Len() != entries*totalF {
			return fmt.Errorf("hpacml: model output has %d elements, outputs want %d entries x %d features",
				y.Len(), entries, totalF)
		}
		flat, err := y.Contiguous().Reshape(entries, totalF)
		if err != nil {
			return err
		}
		at := 0
		for _, p := range r.outPlans {
			part, err := flat.Narrow(1, at, p.Features())
			if err != nil {
				return err
			}
			if err := p.Scatter(part.Contiguous()); err != nil {
				return err
			}
			at += p.Features()
		}
		return nil
	case LayoutImage2D:
		if len(r.outPlans) != 1 {
			return fmt.Errorf("hpacml: image layout wants exactly one output map, got %d", len(r.outPlans))
		}
		p := r.outPlans[0]
		sweep := p.SweepShape()
		if len(sweep) != 2 {
			return fmt.Errorf("hpacml: image layout wants a 2-D sweep, got %v", sweep)
		}
		want := []int{1, p.Features(), sweep[0], sweep[1]}
		if y.Len() != tensor.NumElements(want) {
			return fmt.Errorf("hpacml: model output %v, want %v", y.Shape(), want)
		}
		img, err := y.Contiguous().Reshape(p.Features(), sweep[0], sweep[1])
		if err != nil {
			return err
		}
		t1, err := img.Transpose(0, 1) // [S0, F, S1]
		if err != nil {
			return err
		}
		t2, err := t1.Transpose(1, 2) // [S0, S1, F]
		if err != nil {
			return err
		}
		return p.Scatter(t2.Contiguous())
	case LayoutChannels:
		if len(r.outPlans) != 1 {
			return fmt.Errorf("hpacml: channels layout wants exactly one output map, got %d", len(r.outPlans))
		}
		p := r.outPlans[0]
		sweep := p.SweepShape()
		if len(sweep) != 3 || p.Features() != 1 {
			return fmt.Errorf("hpacml: channels layout wants a 3-D sweep with 1 feature")
		}
		if y.Len() != tensor.NumElements(sweep) {
			return fmt.Errorf("hpacml: model output %v, want %v x 1", y.Shape(), sweep)
		}
		cube, err := y.Contiguous().Reshape(sweep[0], sweep[1], sweep[2], 1)
		if err != nil {
			return err
		}
		return p.Scatter(cube)
	}
	return fmt.Errorf("hpacml: unknown output layout %d", r.outLayout)
}

// Flush forces any buffered database records to disk without closing.
func (r *Region) Flush() error {
	if r.writer != nil {
		return r.writer.Flush()
	}
	return nil
}

// Close flushes and releases the region's database writer. The region must
// not be executed afterwards.
func (r *Region) Close() error {
	if r.closed {
		return nil
	}
	r.closed = true
	if r.writer != nil {
		err := r.writer.Close()
		r.writer = nil
		return err
	}
	return nil
}
