// Package hpacml is a Go implementation of the HPAC-ML programming model
// (Fink et al., SC 2024): a directive-based way to embed machine-learning
// surrogates in scientific applications. An application annotates a code
// region with tensor functor, tensor map, and ml directives; the runtime
// then either collects the region's inputs/outputs into a database for
// offline surrogate training, or replaces the region entirely with model
// inference, bridging the application and tensor memory layouts in both
// directions.
//
// Go has no pragma mechanism, so the directives are the same grammar the
// paper's Clang extension parses (Figure 3), provided as strings when the
// region is constructed — the one-time "annotation" a developer writes.
// The wrapped structured block becomes the closure passed to Execute, which
// is exactly the outlined function the HPAC compiler would have produced:
//
//	region, err := hpacml.NewRegion("stencil",
//	    hpacml.Directives(`
//	        #pragma approx tensor functor(ifn: [i, j, 0:5] = (([i-1, j], [i+1, j], [i, j-1:j+2])))
//	        #pragma approx tensor functor(ofn: [i, j, 0:1] = ([i, j]))
//	        #pragma approx tensor map(to: ifn(t[1:N-1, 1:M-1]))
//	        #pragma approx tensor map(from: ofn(tnew[1:N-1, 1:M-1]))
//	        #pragma approx ml(predicated:useModel) in(t) out(tnew) model("m.gmod") db("d.gh5")
//	    `),
//	    hpacml.BindInt("N", n), hpacml.BindInt("M", m),
//	    hpacml.BindArray("t", t, n, m),
//	    hpacml.BindArray("tnew", tnew, n, m),
//	    hpacml.BindPredicate("useModel", func() bool { return infer }),
//	)
//	...
//	err = region.Execute(func() error { doTimestep(t, tnew); return nil })
package hpacml

import (
	"context"
	"fmt"
	"io"
	"strings"
	"time"

	"repro/internal/bridge"
	"repro/internal/directive"
	"repro/internal/tensor"
)

// Layout controls how the bridge's LHS tensors are presented to the model.
type Layout int

// Supported model I/O layouts.
const (
	// LayoutFlat flattens the sweep dims into a batch: [entries, features].
	// This is the layout of the paper's MLP benchmarks.
	LayoutFlat Layout = iota
	// LayoutImage2D presents a 2-D sweep as a single image sample:
	// [S0, S1, F] becomes [1, F, S0, S1] (channels from features), the
	// layout of the paper's CNN benchmarks (ParticleFilter).
	LayoutImage2D
	// LayoutChannels presents a 3-D sweep whose leading dim is a channel
	// index: [C, S0, S1, 1] becomes [1, C, S0, S1] (MiniWeather's state
	// variables).
	LayoutChannels
)

// Stats aggregates runtime accounting for one region — the quantities
// behind the paper's Figure 6 (to-tensor / inference / from-tensor split)
// and Table III (collection overhead), extended with the batched-execution
// counters that quantify how much amortization ExecuteBatch achieves.
type Stats struct {
	Invocations  int
	Inferences   int
	Collections  int
	AccurateRuns int

	// Batches counts ExecuteBatch calls that reached the model;
	// BatchedInvocations counts the region invocations those calls
	// served. Batched invocations are also included in Invocations and
	// Inferences, so (Inferences - BatchedInvocations) is the
	// single-invocation count.
	Batches            int
	BatchedInvocations int

	// Fallbacks counts surrogate attempts that ran the accurate region
	// instead because the engine failed or the caller's context
	// deadline expired (the FallbackEngine policy). Those invocations
	// are also counted in AccurateRuns, never in Inferences.
	Fallbacks int
	// RemoteInference counts invocations whose inference executed on a
	// remote engine (an http(s):// model URI) rather than in-process.
	// Remote invocations are also included in Inferences.
	RemoteInference int

	// Trust-routing counters, per model-layout input row (one entry of
	// one invocation). TrustedRows counts rows whose surrogate
	// prediction was kept; UncertainRows counts rows rejected by the
	// predictive-variance gate (trust(var:V)); OutOfDomainRows counts
	// rows rejected by the input-domain guardrail (trust(domain:on) —
	// the domain verdict wins when a row trips both gates). With an
	// accurate path available (Execute with a closure, or
	// ExecuteBatchRouted) rejected rows are recomputed accurately and
	// recaptured through the sink; without one the gate is advisory and
	// the surrogate's output is kept, but the counters still record the
	// low-trust rows. Ungated regions count every surrogate-served row
	// in TrustedRows.
	TrustedRows     int
	UncertainRows   int
	OutOfDomainRows int

	// Capture-pipeline counters, folded in from the region's sink:
	// CaptureDrops counts records lost to backpressure or failed remote
	// batches, CaptureFlushes counts completed sink flushes, and
	// RemoteCaptures counts records acknowledged by a remote ingest
	// endpoint (an http(s):// db URI). All zero for regions that never
	// collect.
	CaptureDrops   int
	CaptureFlushes int
	RemoteCaptures int

	ToTensor   time.Duration
	Inference  time.Duration
	FromTensor time.Duration
	Accurate   time.Duration
	DBWrite    time.Duration

	// BatchInference is model-engine time spent inside batched calls;
	// Inference counts only single-invocation Execute model time. The
	// two never overlap, so their sum is total surrogate engine time.
	BatchInference time.Duration
}

// Accumulate adds o's counters and phase timings into s — the bridge
// aggregators use to fold a replica pool's per-Region accounting into
// one view (the serving /v1/stats snapshot and the /metrics region
// series both sum replicas through it). Field-for-field, so a new
// Stats counter only needs wiring here to reach every aggregate.
func (s *Stats) Accumulate(o Stats) {
	s.Invocations += o.Invocations
	s.Inferences += o.Inferences
	s.Collections += o.Collections
	s.AccurateRuns += o.AccurateRuns
	s.Batches += o.Batches
	s.BatchedInvocations += o.BatchedInvocations
	s.Fallbacks += o.Fallbacks
	s.RemoteInference += o.RemoteInference
	s.TrustedRows += o.TrustedRows
	s.UncertainRows += o.UncertainRows
	s.OutOfDomainRows += o.OutOfDomainRows
	s.CaptureDrops += o.CaptureDrops
	s.CaptureFlushes += o.CaptureFlushes
	s.RemoteCaptures += o.RemoteCaptures
	s.ToTensor += o.ToTensor
	s.Inference += o.Inference
	s.FromTensor += o.FromTensor
	s.Accurate += o.Accurate
	s.DBWrite += o.DBWrite
	s.BatchInference += o.BatchInference
}

// BridgeOverhead returns (to-tensor + from-tensor) time as a fraction of
// total inference-engine time (single and batched).
func (s Stats) BridgeOverhead() float64 {
	engine := s.Inference + s.BatchInference
	if engine == 0 {
		return 0
	}
	return float64(s.ToTensor+s.FromTensor) / float64(engine)
}

// Region is one annotated code region: its directives, bound application
// memory, bridge plans, and execution-control state.
//
// A Region is NOT safe for concurrent use. Execute and ExecuteBatch flip
// execution-control state, write through the bound application arrays,
// reuse cached staging tensors, and bump the unsynchronized stats
// counters; two goroutines calling into the same Region race on all of
// them. Concurrent callers should instead give each worker goroutine its
// own replica Region (same directives, its own bound arrays) and feed the
// replicas from a shared queue — the replica-pool idiom internal/serve
// uses to turn independent concurrent requests into ExecuteBatch calls.
type Region struct {
	name string

	functors map[string]*directive.FunctorDecl
	maps     []*directive.MapDecl
	ml       *directive.MLDecl

	env        directive.Env
	arrays     map[string]*bridge.Array
	predicates map[string]func() bool

	inPlans  []*bridge.Plan
	outPlans []*bridge.Plan

	inLayout  Layout
	outLayout Layout

	modelPath string
	dbPath    string

	// engine is the pluggable surrogate-execution backend. It is built
	// lazily from the model() reference on first inference (LocalEngine
	// for file paths, a fallback-wrapped RemoteEngine for http(s) URIs)
	// unless the caller injected one with WithEngine. engineOwned says
	// whether Close should release it; engineRemote and engineFallback
	// cache the policy markers derived from the engine's type. warmed
	// flips after a successful Engine.Warmup and is cleared whenever the
	// model state is dropped.
	engine         Engine
	engineOwned    bool
	engineRemote   bool
	engineFallback bool
	warmed         bool

	// sink is the pluggable capture backend. It is built lazily from
	// the db() reference on the first collection (LocalSink for file
	// paths, RemoteSink for http(s) URIs, either wrapped in a
	// SamplingSink when a capture(...) policy applies) unless the
	// caller injected one with WithSink. sinkOwned says whether Close
	// should close it (injected sinks are only flushed); captureCfg is
	// the WithCapture tuning merged with the directive's capture
	// clause.
	sink       Sink
	sinkOwned  bool
	captureCfg CaptureConfig

	// trust is the resolved trust-routing configuration (from the
	// trust(...) clause unless WithTrust overrode it); trustWired flips
	// once the engine has been wrapped/configured for it.
	trust      *TrustConfig
	trustWired bool

	// f32 is the resolved single-precision-inference setting (from the
	// f32(on|off) clause unless WithFloat32 overrode it; nil means the
	// float64 default). It only affects engines the region builds
	// itself — an injected engine's precision is the injector's call.
	f32 *bool

	// i8 is the resolved int8-inference setting (from the
	// quant(int8|off) clause unless WithInt8 overrode it; nil means
	// off). Like f32 it only affects engines the region builds itself,
	// and it is a request, not a guarantee: without a gate-passing
	// ".quant" sidecar beside the model the engine keeps wide precision.
	i8 *bool

	stats Stats
	// sinkBase is the sink-counter snapshot taken at the last
	// ResetStats, so Stats reports only capture activity since then
	// while CaptureStats keeps the sink's lifetime totals.
	sinkBase SinkStats
	dirSrcs  []string // raw directive text, for Table II accounting
	closed   bool

	// Inference staging caches, reused across invocations so steady-state
	// Execute and ExecuteBatch calls stop allocating and re-planning per
	// call. singleX/Y serve Execute; batches holds one batchState per
	// distinct ExecuteBatch size, so callers whose batch size fluctuates
	// (the serving coalescer cuts batches anywhere in [1, MaxBatch]) don't
	// rebuild staging on every size change; imgScratch holds the
	// pre-transpose composition buffer of the image layout. The *St
	// stagers are precomputed bridge views bound to the staging tensors
	// (nil when the layout needs per-call transforms). The output buffers
	// and their stagers are model-dependent and dropped by
	// InvalidateModel.
	singleX     *tensor.Tensor
	singleInSt  []*bridge.Stager
	singleY     *tensor.Tensor
	singleOutSt []*bridge.Stager
	batches     map[int]*batchState
	imgScratch  *tensor.Tensor
}

// maxBatchStates caps how many distinct batch sizes keep cached staging
// at once (the serving coalescer cuts batches anywhere in [1, MaxBatch],
// so 64 covers its default policy without eviction).
const maxBatchStates = 64

// batchState is the cached staging for one ExecuteBatch size n: the
// batched input tensor with its per-invocation row blocks and gather
// stagers, and (once the first batch of this size has run) the batched
// output tensor with its per-invocation views and scatter stagers.
type batchState struct {
	x        *tensor.Tensor
	blocks   []*tensor.Tensor   // per-invocation row blocks of x
	inSt     [][]*bridge.Stager // per invocation, per in-plan
	y        *tensor.Tensor
	outViews []*tensor.Tensor   // per-invocation row blocks of y
	outSt    [][]*bridge.Stager // per invocation, per out-plan
}

// Option configures a Region under construction.
type Option func(*Region) error

// Directives parses a block of directive text (one directive per line,
// backslash continuations allowed) into the region.
func Directives(src string) Option {
	return func(r *Region) error {
		ds, err := directive.ParseAll(src)
		if err != nil {
			return err
		}
		for _, line := range strings.Split(strings.ReplaceAll(src, "\\\n", " "), "\n") {
			line = strings.TrimSpace(line)
			if line != "" && !strings.HasPrefix(line, "//") {
				r.dirSrcs = append(r.dirSrcs, line)
			}
		}
		return r.addDirectives(ds)
	}
}

// Directive adds a single pre-parsed directive.
func Directive(d directive.Directive) Option {
	return func(r *Region) error {
		r.dirSrcs = append(r.dirSrcs, d.String())
		return r.addDirectives([]directive.Directive{d})
	}
}

// BindArray binds application memory under a name referenced by the map
// targets and the ml in/out lists. The memory is aliased, never copied.
func BindArray(name string, data []float64, shape ...int) Option {
	return func(r *Region) error {
		a, err := bridge.NewArray(name, data, shape...)
		if err != nil {
			return err
		}
		if _, dup := r.arrays[name]; dup {
			return fmt.Errorf("hpacml: array %q bound twice", name)
		}
		r.arrays[name] = a
		return nil
	}
}

// BindInt binds an integer variable referenced by concrete slice
// expressions (e.g. N, M).
func BindInt(name string, v int) Option {
	return func(r *Region) error {
		if _, dup := r.env[name]; dup {
			return fmt.Errorf("hpacml: integer %q bound twice", name)
		}
		r.env[name] = v
		return nil
	}
}

// BindPredicate binds a boolean expression name used by predicated ml
// clauses and if clauses. The literals "true" and "false" are predefined.
func BindPredicate(name string, fn func() bool) Option {
	return func(r *Region) error {
		if fn == nil {
			return fmt.Errorf("hpacml: nil predicate %q", name)
		}
		r.predicates[name] = fn
		return nil
	}
}

// WithFloat32 overrides the directive's f32(on|off) clause: on=true
// asks the region's own LocalEngine to run batched inference in single
// precision (converting the model's weights once at load). Models and
// input shapes the f32 path cannot compile silently keep float64, so
// enabling it never changes which calls succeed — only their precision
// and speed. It has no effect on engines injected with WithEngine.
func WithFloat32(on bool) Option {
	return func(r *Region) error { r.f32 = &on; return nil }
}

// WithInt8 overrides the directive's quant(int8|off) clause: on=true
// asks the region's own LocalEngine to serve through the int8 program
// compiled from the model's ".quant" sidecar (fit by hpacml-quant,
// accuracy-gated against the float64 reference). When the sidecar is
// missing, corrupt, or carries a failing gate verdict, the engine
// silently keeps the wider path — enabling int8 never changes which
// calls succeed. It has no effect on engines injected with WithEngine.
func WithInt8(on bool) Option {
	return func(r *Region) error { r.i8 = &on; return nil }
}

// WithModel overrides the model path from the ml clause.
func WithModel(path string) Option {
	return func(r *Region) error { r.modelPath = path; return nil }
}

// WithDB overrides the database path from the ml clause.
func WithDB(path string) Option {
	return func(r *Region) error { r.dbPath = path; return nil }
}

// InputLayout selects how gathered inputs are presented to the model.
func InputLayout(l Layout) Option {
	return func(r *Region) error { r.inLayout = l; return nil }
}

// OutputLayout selects how model outputs map back to the bridge.
func OutputLayout(l Layout) Option {
	return func(r *Region) error { r.outLayout = l; return nil }
}

// NewRegion builds a region from directives and bindings, performing all
// semantic analysis and bridge-plan construction up front so Execute is
// cheap and cannot fail on layout grounds.
func NewRegion(name string, opts ...Option) (*Region, error) {
	r := &Region{
		name:       name,
		functors:   make(map[string]*directive.FunctorDecl),
		env:        make(directive.Env),
		arrays:     make(map[string]*bridge.Array),
		predicates: make(map[string]func() bool),
	}
	for _, opt := range opts {
		if err := opt(r); err != nil {
			return nil, fmt.Errorf("hpacml: region %q: %w", name, err)
		}
	}
	if err := r.finalize(); err != nil {
		return nil, fmt.Errorf("hpacml: region %q: %w", name, err)
	}
	return r, nil
}

func (r *Region) addDirectives(ds []directive.Directive) error {
	for _, d := range ds {
		switch v := d.(type) {
		case *directive.FunctorDecl:
			if _, dup := r.functors[v.Name]; dup {
				return fmt.Errorf("functor %q declared twice", v.Name)
			}
			r.functors[v.Name] = v
		case *directive.MapDecl:
			r.maps = append(r.maps, v)
		case *directive.MLDecl:
			if r.ml != nil {
				return fmt.Errorf("multiple ml directives in one region")
			}
			r.ml = v
		}
	}
	return nil
}

// finalize performs semantic analysis: resolving maps against functors and
// arrays, building bridge plans, and checking the ml clause's data flow.
func (r *Region) finalize() error {
	if r.ml == nil {
		return fmt.Errorf("missing ml directive")
	}
	if r.modelPath == "" {
		r.modelPath = r.ml.Model
	}
	if r.dbPath == "" {
		r.dbPath = r.ml.DB
	}
	// Model references set through WithModel bypass the directive
	// parser, so re-run its grammar check here: plain paths pass, URIs
	// must be well-formed http(s)://host/model-name forms.
	if r.modelPath != "" {
		if err := directive.ValidateModelRef(r.modelPath); err != nil {
			return err
		}
	}
	if r.dbPath != "" {
		if err := directive.ValidateDBRef(r.dbPath); err != nil {
			return err
		}
	}
	// The directive's capture(...) sampling policy applies unless the
	// caller overrode sampling through WithCapture (runtime tuning wins
	// over the annotation, same as WithModel/WithDB).
	if r.ml.Capture != nil && r.captureCfg.Every == 0 && r.captureCfg.Frac == 0 {
		r.captureCfg.Every = r.ml.Capture.Every
		r.captureCfg.Frac = r.ml.Capture.Frac
	}
	// The directive's trust(...) policy applies unless the caller
	// overrode it through WithTrust (same precedence as capture).
	if r.ml.Trust != nil && r.trust == nil {
		r.trust = &TrustConfig{MaxVariance: r.ml.Trust.MaxVariance, Domain: r.ml.Trust.Domain}
	}
	// The directive's f32(...) precision choice applies unless the
	// caller overrode it through WithFloat32 (same precedence again).
	if r.ml.F32 != nil && r.f32 == nil {
		r.f32 = r.ml.F32
	}
	// Same rule for the quant(int8|off) clause and WithInt8.
	if r.ml.Quant != "" && r.i8 == nil {
		on := r.ml.Quant == "int8"
		r.i8 = &on
	}

	// Inline functor applications in the ml clause (fa-exprs) create
	// implicit tensor maps: in() gathers, out() scatters, inout() both.
	maps := append([]*directive.MapDecl(nil), r.maps...)
	for _, app := range r.ml.InApps {
		maps = append(maps, &directive.MapDecl{Dir: directive.To, Functor: app.Functor, Targets: app.Targets})
	}
	for _, app := range r.ml.OutApps {
		maps = append(maps, &directive.MapDecl{Dir: directive.From, Functor: app.Functor, Targets: app.Targets})
	}
	for _, app := range r.ml.InOutApps {
		maps = append(maps,
			&directive.MapDecl{Dir: directive.To, Functor: app.Functor, Targets: app.Targets},
			&directive.MapDecl{Dir: directive.From, Functor: app.Functor, Targets: app.Targets})
	}
	// inout(name) arrays covered only in the to direction derive their
	// from-map from the same functor application (and vice versa) — this
	// is what lets MiniWeather annotate with three directives (Table II).
	for _, n := range r.ml.InOut {
		var to, from *directive.MapDecl
		for _, m := range maps {
			for _, t := range m.Targets {
				if t.Array != n {
					continue
				}
				if m.Dir == directive.To {
					to = m
				} else {
					from = m
				}
			}
		}
		switch {
		case to != nil && from == nil:
			maps = append(maps, &directive.MapDecl{Dir: directive.From, Functor: to.Functor, Targets: to.Targets})
		case from != nil && to == nil:
			maps = append(maps, &directive.MapDecl{Dir: directive.To, Functor: from.Functor, Targets: from.Targets})
		}
	}

	covered := map[string]directive.Direction{}
	for _, m := range maps {
		f, ok := r.functors[m.Functor]
		if !ok {
			return fmt.Errorf("map references undeclared functor %q", m.Functor)
		}
		plan, err := bridge.Build(f, m, r.arrays, r.env)
		if err != nil {
			return err
		}
		if m.Dir == directive.To {
			r.inPlans = append(r.inPlans, plan)
		} else {
			r.outPlans = append(r.outPlans, plan)
		}
		for _, t := range m.Targets {
			covered[t.Array+"/"+m.Dir.String()] = m.Dir
		}
	}

	check := func(names []string, dir string) error {
		for _, n := range names {
			if _, ok := r.arrays[n]; !ok {
				return fmt.Errorf("ml %s(%s): array not bound", dir, n)
			}
			if _, ok := covered[n+"/"+dir]; !ok {
				return fmt.Errorf("ml %s(%s): no tensor map covers this array", dir, n)
			}
		}
		return nil
	}
	if err := check(r.ml.In, "to"); err != nil {
		return err
	}
	if err := check(r.ml.Out, "from"); err != nil {
		return err
	}
	for _, n := range r.ml.InOut {
		if err := check([]string{n}, "to"); err != nil {
			return err
		}
		if err := check([]string{n}, "from"); err != nil {
			return err
		}
	}
	if len(r.inPlans) == 0 {
		return fmt.Errorf("no to-direction tensor map")
	}
	if len(r.outPlans) == 0 {
		return fmt.Errorf("no from-direction tensor map")
	}
	// All input plans must agree on entry count so their features can be
	// concatenated per entry.
	entries := r.inPlans[0].Entries()
	for _, p := range r.inPlans[1:] {
		if p.Entries() != entries {
			return fmt.Errorf("input maps disagree on entry count: %d vs %d", p.Entries(), entries)
		}
	}
	outEntries := r.outPlans[0].Entries()
	for _, p := range r.outPlans[1:] {
		if p.Entries() != outEntries {
			return fmt.Errorf("output maps disagree on entry count: %d vs %d", p.Entries(), outEntries)
		}
	}
	// Predicates referenced by the ml clause must be resolvable.
	if r.ml.Mode == directive.Predicated {
		if _, err := r.evalPredicate(r.ml.Cond); err != nil {
			return err
		}
	}
	if r.ml.If != "" {
		if _, err := r.evalPredicate(r.ml.If); err != nil {
			return err
		}
	}
	return nil
}

func (r *Region) evalPredicate(expr string) (func() bool, error) {
	expr = strings.TrimSpace(expr)
	switch expr {
	case "true", "1":
		return func() bool { return true }, nil
	case "false", "0":
		return func() bool { return false }, nil
	}
	if fn, ok := r.predicates[expr]; ok {
		return fn, nil
	}
	return nil, fmt.Errorf("unbound predicate %q (bind it with BindPredicate)", expr)
}

// Name returns the region name (its group in the collection database).
func (r *Region) Name() string { return r.name }

// NumDirectives returns how many directives annotate the region — the
// paper's Table II metric.
func (r *Region) NumDirectives() int { return len(r.dirSrcs) }

// DirectiveLines returns the raw annotation text, one directive per entry.
func (r *Region) DirectiveLines() []string {
	return append([]string(nil), r.dirSrcs...)
}

// InputShape returns the model input shape of one region invocation
// under the configured input layout — what the bridge will present to
// the model. Serving-layer replica pools use it to validate that a
// registered model's expected input matches the region's bridging before
// any traffic arrives.
func (r *Region) InputShape() ([]int, error) { return r.modelInputShape() }

// Stats returns a snapshot of the region's runtime accounting, with
// the capture sink's counters folded in (relative to the last
// ResetStats, like every other field).
func (r *Region) Stats() Stats {
	s := r.stats
	if ss, ok := r.CaptureStats(); ok {
		s.CaptureDrops = int(ss.Dropped - r.sinkBase.Dropped)
		s.CaptureFlushes = int(ss.Flushes - r.sinkBase.Flushes)
		s.RemoteCaptures = int(ss.RemoteRecords - r.sinkBase.RemoteRecords)
	}
	return s
}

// CaptureStats snapshots the capture sink's own accounting (queue
// drops, flushes, shard count, remote ingest totals). ok is false when
// no sink has been resolved yet or the sink does not expose stats.
// The snapshot stays readable after Close — that is when the final
// flush counts are in.
func (r *Region) CaptureStats() (SinkStats, bool) {
	ss, ok := r.sink.(sinkStatser)
	if !ok {
		return SinkStats{}, false
	}
	return ss.SinkStats(), true
}

// ResetStats zeroes the accounting, capture counters included: the
// sink keeps its lifetime totals (readable via CaptureStats), but
// later Stats snapshots count only activity after the reset.
func (r *Region) ResetStats() {
	r.stats = Stats{}
	r.sinkBase = SinkStats{}
	if ss, ok := r.CaptureStats(); ok {
		r.sinkBase = ss
	}
}

// Execute runs the region once. Depending on the ml clause it either
// invokes the accurate path (optionally collecting data) or replaces it
// with surrogate inference. accurate is the outlined structured block.
func (r *Region) Execute(accurate func() error) error {
	return r.ExecuteContext(context.Background(), accurate)
}

// ExecuteContext is Execute with a caller-supplied context. The context
// flows through the region's engine down to the backend — a remote
// engine threads it into its HTTP requests, so cancelling the context
// cancels in-flight inference on the wire. When the engine carries the
// fallback policy (every http(s):// model URI does by default), a
// context that expires before or during inference runs the accurate
// path instead of failing the invocation.
func (r *Region) ExecuteContext(ctx context.Context, accurate func() error) error {
	if r.closed {
		return fmt.Errorf("hpacml: region %q used after Close", r.name)
	}
	if ctx == nil {
		ctx = context.Background()
	}
	r.stats.Invocations++

	// The if clause gates surrogate use entirely: when false, the region
	// runs the original code with no HPAC-ML involvement (the paper's
	// MiniWeather interleaving control).
	if r.ml.If != "" {
		gate, err := r.evalPredicate(r.ml.If)
		if err != nil {
			return err
		}
		if !gate() {
			return r.runAccurate(accurate)
		}
	}

	switch r.ml.Mode {
	case directive.Infer:
		return r.runInference(ctx, accurate)
	case directive.Collect:
		return r.runCollection(accurate)
	case directive.Predicated:
		cond := true
		if r.ml.Cond != "" {
			fn, err := r.evalPredicate(r.ml.Cond)
			if err != nil {
				return err
			}
			cond = fn()
		}
		if cond {
			return r.runInference(ctx, accurate)
		}
		return r.runCollection(accurate)
	}
	return fmt.Errorf("hpacml: unknown ml mode %v", r.ml.Mode)
}

func (r *Region) runAccurate(accurate func() error) error {
	start := time.Now()
	err := accurate()
	r.stats.Accurate += time.Since(start)
	r.stats.AccurateRuns++
	return err
}

// runCollection executes the accurate path, capturing inputs beforehand
// and outputs afterwards, then hands the pair to the capture sink as
// one atomic record along with the region runtime. Records are stored
// in the model's layout, so one region invocation is one training
// sample: [entries, features] rows for flat regions, one [1, C, H, W]
// image for image/channel regions. With the default asynchronous sink
// the solver pays only the gather and an enqueue here — serialization
// and I/O happen on the sink's writer goroutine (Stats.DBWrite now
// measures the enqueue cost, which is the point).
//
// The gathered tensors are freshly allocated (never views of the bound
// application arrays), so the sink may write them after the solver has
// already overwritten the application state.
func (r *Region) runCollection(accurate func() error) error {
	start := time.Now()
	inputs, err := r.modelInput()
	r.stats.ToTensor += time.Since(start)
	if err != nil {
		return err
	}

	runStart := time.Now()
	if err := accurate(); err != nil {
		return err
	}
	runtime := time.Since(runStart)
	r.stats.Accurate += runtime
	r.stats.AccurateRuns++
	r.stats.Collections++

	start = time.Now()
	outputs, err := r.modelTarget()
	r.stats.FromTensor += time.Since(start)
	if err != nil {
		return err
	}

	start = time.Now()
	defer func() { r.stats.DBWrite += time.Since(start) }()
	if err := r.ensureSink(); err != nil {
		return err
	}
	return r.sink.Capture(&CaptureRecord{
		Region:    r.name,
		Inputs:    inputs,
		Outputs:   outputs,
		RuntimeNS: float64(runtime.Nanoseconds()),
	})
}

// ensureSink resolves the region's capture sink from its db()
// reference on first use: a plain path gets the asynchronous sharded
// LocalSink, an http(s):// URI the RemoteSink against a hpacml-serve
// ingest endpoint; a sampling policy (capture(...) clause or
// WithCapture) wraps either in a SamplingSink. Injected sinks
// (WithSink) short-circuit all of it.
func (r *Region) ensureSink() error {
	if r.sink != nil {
		return nil
	}
	if r.dbPath == "" {
		return fmt.Errorf("hpacml: collection without db() clause in region %q", r.name)
	}
	s, err := NewSink(r.dbPath, r.captureCfg)
	if err != nil {
		return fmt.Errorf("hpacml: region %q: %w", r.name, err)
	}
	r.sink = s
	r.sinkOwned = true
	return nil
}

// setEngine installs an engine and derives its policy markers.
func (r *Region) setEngine(e Engine, owned bool) {
	r.engine = e
	r.engineOwned = owned
	r.engineRemote = isRemote(e)
	r.engineFallback = wantsFallback(e)
	r.warmed = false
}

// ensureEngine resolves the region's engine from its model() reference
// on first use: a plain path gets the in-process LocalEngine, an
// http(s):// URI a RemoteEngine wrapped in the FallbackEngine policy
// (a distributed deployment should degrade to the accurate path, not
// fail the solve, when the server is unreachable). Injected engines
// (WithEngine) short-circuit all of it.
func (r *Region) ensureEngine() error {
	if r.engine != nil {
		return nil
	}
	if r.modelPath == "" {
		return fmt.Errorf("hpacml: inference without model() clause in region %q", r.name)
	}
	if directive.IsRemoteModel(r.modelPath) {
		// The default timeout keeps the fallback promise honest: a
		// server that accepts connections but never answers must still
		// degrade to the accurate path, not hang Execute forever. An
		// application wanting different limits injects its own engine
		// with WithEngine.
		remote, err := NewRemoteEngine(r.modelPath, WithRequestTimeout(DefaultRemoteTimeout))
		if err != nil {
			return fmt.Errorf("hpacml: region %q: %w", r.name, err)
		}
		r.setEngine(NewFallbackEngine(remote), true)
		return nil
	}
	var opts []LocalOption
	if r.f32 != nil && *r.f32 {
		opts = append(opts, WithFloat32Inference())
	}
	if r.i8 != nil && *r.i8 {
		opts = append(opts, WithInt8Inference())
	}
	r.setEngine(NewLocalEngine(r.modelPath, opts...), true)
	return nil
}

// warmEngine runs the engine's warmup hook once against the region's
// single-invocation input shape. Failure leaves warmed unset, so the
// next invocation retries — a remote server may come up later, and the
// local engine's load error repeats exactly as the old in-line model
// load did.
func (r *Region) warmEngine(ctx context.Context) error {
	if r.warmed {
		return nil
	}
	shape, err := r.modelInputShape()
	if err != nil {
		return err
	}
	if err := r.engine.Warmup(ctx, shape); err != nil {
		return err
	}
	r.warmed = true
	return nil
}

// fallbackOr applies the engine's fallback policy to an inference
// failure: when engaged and an accurate closure exists, the accurate
// region runs (counted in Stats.Fallbacks) and the error is swallowed;
// otherwise the error propagates.
func (r *Region) fallbackOr(accurate func() error, err error) error {
	if r.engineFallback && accurate != nil {
		r.stats.Fallbacks++
		return r.runAccurate(accurate)
	}
	return err
}

// runInference replaces the region with surrogate evaluation: gather
// inputs, run the engine, scatter outputs. Staging input and output
// tensors are cached on the region, so steady-state calls reuse buffers
// instead of allocating.
func (r *Region) runInference(ctx context.Context, accurate func() error) error {
	if err := r.ensureEngine(); err != nil {
		return err
	}
	if err := r.ensureTrustEngine(); err != nil {
		return err
	}
	if err := r.warmEngine(ctx); err != nil {
		return r.fallbackOr(accurate, err)
	}

	start := time.Now()
	x, err := r.stagedInput()
	r.stats.ToTensor += time.Since(start)
	if err != nil {
		return err
	}

	start = time.Now()
	if r.singleY == nil {
		outShape, oerr := r.engine.OutputShape(x.Shape())
		if oerr != nil {
			r.stats.Inference += time.Since(start)
			return r.fallbackOr(accurate, fmt.Errorf("hpacml: inference in region %q: %w", r.name, oerr))
		}
		r.singleY = tensor.New(outShape...)
		r.singleOutSt = r.outputStagers(r.singleY)
	}
	err = r.engine.Infer(ctx, x, r.singleY)
	r.stats.Inference += time.Since(start)
	if err != nil {
		r.singleY, r.singleOutSt = nil, nil
		return r.fallbackOr(accurate, fmt.Errorf("hpacml: inference in region %q: %w", r.name, err))
	}

	// Per-row trust gate: a gated engine reports which rows it rejects.
	// With an accurate closure the whole invocation is recomputed and
	// recaptured when any row is rejected (a single Execute has no
	// finer granularity than the invocation); without one the gate is
	// advisory — outputs are kept, counters still record the verdicts.
	var rep *TrustReport
	if tr, ok := r.engine.(trustReporter); ok {
		rep = tr.TrustReport()
	}
	if rep != nil && accurate != nil && rep.AnyUntrusted() {
		return r.routeUntrustedSingle(rep, accurate)
	}

	start = time.Now()
	if r.singleOutSt != nil {
		err = scatterStagers(r.singleOutSt)
	} else {
		err = r.scatterModelOutput(r.singleY)
	}
	r.stats.FromTensor += time.Since(start)
	if err != nil {
		return err
	}
	r.stats.Inferences++
	if r.engineRemote {
		r.stats.RemoteInference++
	}
	if rep != nil {
		r.countTrust(rep, true)
	} else {
		r.stats.TrustedRows += inputRows(x)
	}
	return nil
}

// stagedInput gathers the region inputs into the cached single-invocation
// staging tensor, allocating it (and its stagers) on first use.
func (r *Region) stagedInput() (*tensor.Tensor, error) {
	if r.singleX == nil {
		shape, err := r.modelInputShape()
		if err != nil {
			return nil, err
		}
		r.singleX = tensor.New(shape...)
		r.singleInSt = r.inputStagers(r.singleX)
	}
	if r.singleInSt != nil {
		for _, st := range r.singleInSt {
			if err := st.Gather(); err != nil {
				return nil, err
			}
		}
		return r.singleX, nil
	}
	if err := r.modelInputInto(r.singleX); err != nil {
		return nil, err
	}
	return r.singleX, nil
}

// inputStagers precomputes gather stagers binding the in-plans to dst.
// It returns nil when the layout needs a per-call transform (image) or a
// stager cannot be built; callers then fall back to modelInputInto,
// which reports any real layout error.
func (r *Region) inputStagers(dst *tensor.Tensor) []*bridge.Stager {
	switch r.inLayout {
	case LayoutFlat:
		out := make([]*bridge.Stager, 0, len(r.inPlans))
		if len(r.inPlans) == 1 {
			st, err := r.inPlans[0].NewStager(dst)
			if err != nil {
				return nil
			}
			return append(out, st)
		}
		fOff := 0
		for _, p := range r.inPlans {
			part, err := dst.Narrow(1, fOff, p.Features())
			if err != nil {
				return nil
			}
			st, err := p.NewStager(part)
			if err != nil {
				return nil
			}
			out = append(out, st)
			fOff += p.Features()
		}
		return out
	case LayoutChannels:
		if len(r.inPlans) != 1 {
			return nil
		}
		st, err := r.inPlans[0].NewStager(dst)
		if err != nil {
			return nil
		}
		return []*bridge.Stager{st}
	}
	return nil
}

// outputStagers precomputes scatter stagers binding the out-plans to the
// model output tensor y. It mirrors scatterModelOutput's flat and
// channels layouts; nil means the caller must scatter generically.
func (r *Region) outputStagers(y *tensor.Tensor) []*bridge.Stager {
	switch r.outLayout {
	case LayoutFlat:
		totalF := 0
		for _, p := range r.outPlans {
			totalF += p.Features()
		}
		entries := r.outPlans[0].Entries()
		if y.Len() != entries*totalF || !y.IsContiguous() {
			return nil
		}
		flat, err := y.Reshape(entries, totalF)
		if err != nil {
			return nil
		}
		out := make([]*bridge.Stager, 0, len(r.outPlans))
		fOff := 0
		for _, p := range r.outPlans {
			part, err := flat.Narrow(1, fOff, p.Features())
			if err != nil {
				return nil
			}
			st, err := p.NewStager(part)
			if err != nil {
				return nil
			}
			out = append(out, st)
			fOff += p.Features()
		}
		return out
	case LayoutChannels:
		if len(r.outPlans) != 1 {
			return nil
		}
		p := r.outPlans[0]
		sweep := p.SweepShape()
		if len(sweep) != 3 || p.Features() != 1 || y.Len() != tensor.NumElements(sweep) {
			return nil
		}
		st, err := p.NewStager(y)
		if err != nil {
			return nil
		}
		return []*bridge.Stager{st}
	}
	return nil
}

// scatterStagers runs precomputed scatter stagers in plan order.
func scatterStagers(sts []*bridge.Stager) error {
	for _, st := range sts {
		if err := st.Scatter(); err != nil {
			return err
		}
	}
	return nil
}

// ExecuteBatch runs n independent invocations of the region through a
// single batched model call: stage(i) is called to set up invocation i's
// application inputs, which are immediately gathered into row block i of
// one staging tensor; the model then runs once over all n invocations;
// finally each invocation's outputs are scattered back in order, with
// finish(i) called after invocation i's outputs are in place. Either
// callback may be nil.
//
// This is the amortization that makes surrogates win on the paper's MLP
// benchmarks: bridge planning, kernel dispatch, and model-call overhead
// are paid once per batch instead of once per invocation. Outputs are
// bit-identical to the sequential loop
//
//	for i := range n { stage(i); r.Execute(nil); finish(i) }
//
// because every NN kernel accumulates per output row in a
// batch-size-independent order.
//
// Invocations must be independent: all inputs are gathered before any
// output is scattered, so stage(i) must not depend on the outputs of
// earlier invocations in the same batch (use sequential Execute for
// auto-regressive regions like MiniWeather). The region must resolve to
// the surrogate path: collection-mode regions, false predicates, and
// false if() clauses are rejected, since their accurate path cannot be
// batched.
func (r *Region) ExecuteBatch(n int, stage func(i int) error, finish func(i int) error) error {
	return r.ExecuteBatchContext(context.Background(), n, stage, finish)
}

// ExecuteBatchContext is ExecuteBatch with a caller-supplied context,
// which flows through the engine to the backend exactly as in
// ExecuteContext. Unlike the single-invocation path, a batched engine
// failure always propagates — there is no accurate form of a batch to
// fall back to (the invocations are independent precisely because only
// the surrogate runs them together), so callers that want the paper's
// conditional execution under batching must retry invocations
// individually through ExecuteContext.
func (r *Region) ExecuteBatchContext(ctx context.Context, n int, stage func(i int) error, finish func(i int) error) error {
	if r.closed {
		return fmt.Errorf("hpacml: region %q used after Close", r.name)
	}
	if n <= 0 {
		return nil
	}
	if ctx == nil {
		ctx = context.Background()
	}
	if err := r.requireInference(); err != nil {
		return err
	}
	if err := r.ensureEngine(); err != nil {
		return err
	}
	if err := r.ensureTrustEngine(); err != nil {
		return err
	}
	if err := r.warmEngine(ctx); err != nil {
		return fmt.Errorf("hpacml: batched inference in region %q: %w", r.name, err)
	}
	bs := r.batches[n]
	if bs == nil {
		shape, err := r.modelInputShape()
		if err != nil {
			return err
		}
		if bs, err = r.buildBatchStaging(n, shape); err != nil {
			return err
		}
		if r.batches == nil {
			r.batches = make(map[int]*batchState)
		}
		// Bound the cache: a caller cycling through many distinct batch
		// sizes (variable tail batches) must not accumulate staging
		// tensors forever. Evicting an arbitrary entry costs at most one
		// rebuild for that size later.
		if len(r.batches) >= maxBatchStates {
			for k := range r.batches {
				delete(r.batches, k)
				break
			}
		}
		r.batches[n] = bs
	}

	var err error
	for i := 0; i < n; i++ {
		if stage != nil {
			if err := stage(i); err != nil {
				return fmt.Errorf("hpacml: batch stage %d in region %q: %w", i, r.name, err)
			}
		}
		start := time.Now()
		if bs.inSt != nil {
			for _, st := range bs.inSt[i] {
				if err = st.Gather(); err != nil {
					break
				}
			}
		} else {
			err = r.modelInputInto(bs.blocks[i])
		}
		r.stats.ToTensor += time.Since(start)
		if err != nil {
			return err
		}
	}

	start := time.Now()
	if bs.y == nil {
		outShape, oerr := r.engine.OutputShape(bs.x.Shape())
		if oerr != nil {
			r.stats.BatchInference += time.Since(start)
			return fmt.Errorf("hpacml: batched inference in region %q: %w", r.name, oerr)
		}
		if err := r.buildBatchOutput(bs, tensor.New(outShape...), n); err != nil {
			r.stats.BatchInference += time.Since(start)
			return err
		}
	}
	err = r.engine.Infer(ctx, bs.x, bs.y)
	r.stats.BatchInference += time.Since(start)
	if err != nil {
		bs.y, bs.outViews, bs.outSt = nil, nil, nil
		return fmt.Errorf("hpacml: batched inference in region %q: %w", r.name, err)
	}
	r.stats.Invocations += n
	r.stats.Inferences += n
	r.stats.Batches++
	r.stats.BatchedInvocations += n
	if r.engineRemote {
		r.stats.RemoteInference += n
	}
	// Without an accurate form of the batch the trust gate is advisory:
	// outputs are kept either way, but a gated engine's per-row
	// verdicts still land in the counters (ExecuteBatchRouted is the
	// routed variant).
	if tr, ok := r.engine.(trustReporter); ok && tr.TrustReport() != nil {
		r.countTrust(tr.TrustReport(), true)
	} else {
		r.stats.TrustedRows += inputRows(bs.x)
	}

	for i := 0; i < n; i++ {
		start := time.Now()
		if bs.outSt != nil {
			err = scatterStagers(bs.outSt[i])
		} else {
			err = r.scatterModelOutput(bs.outViews[i])
		}
		r.stats.FromTensor += time.Since(start)
		if err != nil {
			return err
		}
		if finish != nil {
			if err := finish(i); err != nil {
				return fmt.Errorf("hpacml: batch finish %d in region %q: %w", i, r.name, err)
			}
		}
	}
	return nil
}

// buildBatchStaging allocates the batched input staging tensor for n
// invocations, precomputing each invocation's row block and, when the
// layout allows, its gather stagers. One batchState is cached per batch
// size, so a caller alternating sizes (the serving coalescer) pays the
// build once per distinct size, not once per size change.
func (r *Region) buildBatchStaging(n int, shape []int) (*batchState, error) {
	per := shape[0]
	x := tensor.New(append([]int{n * per}, shape[1:]...)...)
	bs := &batchState{x: x, blocks: make([]*tensor.Tensor, n)}
	inSt := make([][]*bridge.Stager, 0, n)
	for i := range bs.blocks {
		var err error
		if bs.blocks[i], err = x.Narrow(0, i*per, per); err != nil {
			return nil, err
		}
		if inSt != nil {
			if sts := r.inputStagers(bs.blocks[i]); sts != nil {
				inSt = append(inSt, sts)
			} else {
				inSt = nil
			}
		}
	}
	bs.inSt = inSt
	return bs, nil
}

// buildBatchOutput caches the first batched model output of a batch size:
// it validates that y splits evenly into n per-invocation row blocks and
// precomputes each block's view and, when the layout allows, its scatter
// stagers.
func (r *Region) buildBatchOutput(bs *batchState, y *tensor.Tensor, n int) error {
	if y.Rank() < 1 || y.Dim(0)%n != 0 {
		return fmt.Errorf("hpacml: batched model output %v in region %q does not split into %d invocations",
			y.Shape(), r.name, n)
	}
	outPer := y.Dim(0) / n
	views := make([]*tensor.Tensor, n)
	outSt := make([][]*bridge.Stager, 0, n)
	for i := range views {
		var err error
		if views[i], err = y.Narrow(0, i*outPer, outPer); err != nil {
			return err
		}
		if outSt != nil {
			if sts := r.outputStagers(views[i]); sts != nil {
				outSt = append(outSt, sts)
			} else {
				outSt = nil
			}
		}
	}
	bs.y, bs.outViews, bs.outSt = y, views, outSt
	return nil
}

// requireInference verifies the region currently resolves to the
// surrogate path, which is the only path ExecuteBatch can serve.
func (r *Region) requireInference() error {
	if r.ml.If != "" {
		gate, err := r.evalPredicate(r.ml.If)
		if err != nil {
			return err
		}
		if !gate() {
			return fmt.Errorf("hpacml: ExecuteBatch in region %q: if() clause is false; batching requires the surrogate path", r.name)
		}
	}
	switch r.ml.Mode {
	case directive.Infer:
		return nil
	case directive.Predicated:
		if r.ml.Cond != "" {
			fn, err := r.evalPredicate(r.ml.Cond)
			if err != nil {
				return err
			}
			if !fn() {
				return fmt.Errorf("hpacml: ExecuteBatch in region %q: predicate selects collection; batching requires inference", r.name)
			}
		}
		return nil
	case directive.Collect:
		return fmt.Errorf("hpacml: ExecuteBatch in region %q: region is in collection mode", r.name)
	}
	return fmt.Errorf("hpacml: unknown ml mode %v", r.ml.Mode)
}

// Engine returns the region's surrogate-execution engine, or nil when
// none has been resolved yet (no inference has run and none was
// injected with WithEngine).
func (r *Region) Engine() Engine { return r.engine }

// InvalidateModel forces the next inference to re-resolve the model
// from its source of truth — for the default local engine, re-reading
// the .gmod from disk (e.g. after a new training round wrote the file).
// Cached output buffers are model-dependent and dropped with it.
func (r *Region) InvalidateModel() {
	r.dropModel()
	if inv, ok := r.engine.(invalidator); ok {
		inv.Invalidate()
		return
	}
	// No engine resolved yet: evict the shared cache entry directly so
	// the eventual local engine re-reads disk, as before.
	if r.engine == nil && r.modelPath != "" && !directive.IsRemoteModel(r.modelPath) {
		modelCache.Delete(r.modelPath)
	}
}

// RefreshModel drops the region's resolved model state and
// model-dependent caches so the next inference re-resolves it through
// the engine's refresh hook. For the default local engine that means
// the shared model cache — unlike InvalidateModel it does not evict the
// cache entry: paired with StoreModel it lets a replica pool swap onto
// already-loaded validated weights without touching disk — if every
// replica re-read the file instead, a concurrent retrain could hand
// different replicas different (or torn) bytes for the same swap.
func (r *Region) RefreshModel() { r.dropModel() }

func (r *Region) dropModel() {
	r.warmed = false
	if rf, ok := r.engine.(refresher); ok {
		rf.Refresh()
	}
	r.singleY, r.singleOutSt = nil, nil
	for _, bs := range r.batches {
		bs.y, bs.outViews, bs.outSt = nil, nil, nil
	}
}

// gatherOutputs composes all from-plans (reading current application
// memory) into [entries, total features] — used during collection.
func (r *Region) gatherOutputs() (*tensor.Tensor, error) {
	return gatherFlat(r.outPlans)
}

// modelTarget gathers the region's outputs in the layout the model is
// trained to produce: [entries, features] rows for flat regions, a single
// flattened [1, N] sample for image/channel regions (whose decoders end
// in a dense layer).
func (r *Region) modelTarget() (*tensor.Tensor, error) {
	switch r.outLayout {
	case LayoutFlat:
		return r.gatherOutputs()
	case LayoutImage2D, LayoutChannels:
		if len(r.outPlans) != 1 {
			return nil, fmt.Errorf("hpacml: image/channels layout wants exactly one output map, got %d", len(r.outPlans))
		}
		g, err := r.outPlans[0].Gather()
		if err != nil {
			return nil, err
		}
		return g.Reshape(1, g.Len())
	}
	return nil, fmt.Errorf("hpacml: unknown output layout %d", r.outLayout)
}

func gatherFlat(plans []*bridge.Plan) (*tensor.Tensor, error) {
	parts := make([]*tensor.Tensor, len(plans))
	for i, p := range plans {
		g, err := p.Gather()
		if err != nil {
			return nil, err
		}
		flat, err := g.Reshape(p.Entries(), p.Features())
		if err != nil {
			return nil, err
		}
		parts[i] = flat
	}
	if len(parts) == 1 {
		return parts[0], nil
	}
	return tensor.Concat(1, parts...)
}

// modelInputShape returns the model input shape of one region invocation
// for the configured input layout, validating layout constraints.
func (r *Region) modelInputShape() ([]int, error) {
	switch r.inLayout {
	case LayoutFlat:
		totalF := 0
		for _, p := range r.inPlans {
			totalF += p.Features()
		}
		return []int{r.inPlans[0].Entries(), totalF}, nil
	case LayoutImage2D:
		if len(r.inPlans) != 1 {
			return nil, fmt.Errorf("hpacml: image layout wants exactly one input map, got %d", len(r.inPlans))
		}
		p := r.inPlans[0]
		sweep := p.SweepShape()
		if len(sweep) != 2 {
			return nil, fmt.Errorf("hpacml: image layout wants a 2-D sweep, got %v", sweep)
		}
		return []int{1, p.Features(), sweep[0], sweep[1]}, nil
	case LayoutChannels:
		if len(r.inPlans) != 1 {
			return nil, fmt.Errorf("hpacml: channels layout wants exactly one input map, got %d", len(r.inPlans))
		}
		p := r.inPlans[0]
		sweep := p.SweepShape()
		if len(sweep) != 3 || p.Features() != 1 {
			return nil, fmt.Errorf("hpacml: channels layout wants a 3-D sweep with 1 feature, got %v/%d", sweep, p.Features())
		}
		return []int{1, sweep[0], sweep[1], sweep[2]}, nil
	}
	return nil, fmt.Errorf("hpacml: unknown input layout %d", r.inLayout)
}

// modelInputInto gathers the region inputs into dst, which must have the
// single-invocation model input shape — typically the cached staging
// tensor, or one row block of the batched staging tensor.
func (r *Region) modelInputInto(dst *tensor.Tensor) error {
	switch r.inLayout {
	case LayoutFlat:
		if len(r.inPlans) == 1 {
			return r.inPlans[0].GatherInto(dst)
		}
		fOff := 0
		for _, p := range r.inPlans {
			part, err := dst.Narrow(1, fOff, p.Features())
			if err != nil {
				return err
			}
			if err := p.GatherInto(part); err != nil {
				return err
			}
			fOff += p.Features()
		}
		return nil
	case LayoutImage2D:
		p := r.inPlans[0]
		sweep := p.SweepShape()
		if len(sweep) != 2 {
			return fmt.Errorf("hpacml: image layout wants a 2-D sweep, got %v", sweep)
		}
		// Compose as [S0, S1, F] in the cached scratch, then transpose
		// into dst's [1, F, S0, S1] channel-first layout.
		if r.imgScratch == nil {
			r.imgScratch = tensor.New(sweep[0], sweep[1], p.Features())
		}
		if err := p.GatherInto(r.imgScratch); err != nil {
			return err
		}
		t1, err := r.imgScratch.Transpose(0, 2) // [F, S1, S0]
		if err != nil {
			return err
		}
		t2, err := t1.Transpose(1, 2) // [F, S0, S1]
		if err != nil {
			return err
		}
		return tensor.CopyFlat(dst, t2)
	case LayoutChannels:
		return r.inPlans[0].GatherInto(dst)
	}
	return fmt.Errorf("hpacml: unknown input layout %d", r.inLayout)
}

// modelInput gathers the inputs into a freshly allocated tensor laid out
// for the model (the collection path, which records the tensor, uses this
// instead of the cached staging buffers).
func (r *Region) modelInput() (*tensor.Tensor, error) {
	shape, err := r.modelInputShape()
	if err != nil {
		return nil, err
	}
	dst := tensor.New(shape...)
	if err := r.modelInputInto(dst); err != nil {
		return nil, err
	}
	return dst, nil
}

// scatterModelOutput converts the model output back to the bridge layout
// and scatters it into application memory.
func (r *Region) scatterModelOutput(y *tensor.Tensor) error {
	switch r.outLayout {
	case LayoutFlat:
		// Split [entries, totalF] across the from-plans in order.
		totalF := 0
		for _, p := range r.outPlans {
			totalF += p.Features()
		}
		entries := r.outPlans[0].Entries()
		if y.Len() != entries*totalF {
			return fmt.Errorf("hpacml: model output has %d elements, outputs want %d entries x %d features",
				y.Len(), entries, totalF)
		}
		flat, err := y.Contiguous().Reshape(entries, totalF)
		if err != nil {
			return err
		}
		at := 0
		for _, p := range r.outPlans {
			part, err := flat.Narrow(1, at, p.Features())
			if err != nil {
				return err
			}
			if err := p.Scatter(part.Contiguous()); err != nil {
				return err
			}
			at += p.Features()
		}
		return nil
	case LayoutImage2D:
		if len(r.outPlans) != 1 {
			return fmt.Errorf("hpacml: image layout wants exactly one output map, got %d", len(r.outPlans))
		}
		p := r.outPlans[0]
		sweep := p.SweepShape()
		if len(sweep) != 2 {
			return fmt.Errorf("hpacml: image layout wants a 2-D sweep, got %v", sweep)
		}
		want := []int{1, p.Features(), sweep[0], sweep[1]}
		if y.Len() != tensor.NumElements(want) {
			return fmt.Errorf("hpacml: model output %v, want %v", y.Shape(), want)
		}
		img, err := y.Contiguous().Reshape(p.Features(), sweep[0], sweep[1])
		if err != nil {
			return err
		}
		t1, err := img.Transpose(0, 1) // [S0, F, S1]
		if err != nil {
			return err
		}
		t2, err := t1.Transpose(1, 2) // [S0, S1, F]
		if err != nil {
			return err
		}
		return p.Scatter(t2.Contiguous())
	case LayoutChannels:
		if len(r.outPlans) != 1 {
			return fmt.Errorf("hpacml: channels layout wants exactly one output map, got %d", len(r.outPlans))
		}
		p := r.outPlans[0]
		sweep := p.SweepShape()
		if len(sweep) != 3 || p.Features() != 1 {
			return fmt.Errorf("hpacml: channels layout wants a 3-D sweep with 1 feature")
		}
		if y.Len() != tensor.NumElements(sweep) {
			return fmt.Errorf("hpacml: model output %v, want %v x 1", y.Shape(), sweep)
		}
		cube, err := y.Contiguous().Reshape(sweep[0], sweep[1], sweep[2], 1)
		if err != nil {
			return err
		}
		return p.Scatter(cube)
	}
	return fmt.Errorf("hpacml: unknown output layout %d", r.outLayout)
}

// Flush is a capture barrier: it returns once every record captured so
// far is durably with the backend (written and flushed for the local
// sink, acknowledged by the server for the remote one), reporting any
// asynchronous write failure. A no-op before the first collection.
func (r *Region) Flush() error {
	if r.sink != nil {
		return r.sink.Flush()
	}
	return nil
}

// Close drains, flushes, and releases the capture sink the region
// built for itself (an injected sink is flushed but stays open — it is
// the caller's, possibly shared across regions), and releases the
// engine the region built for itself (injected engines likewise stay
// the caller's). Running Close even on error paths is what guarantees
// a lazily-opened capture pipeline never silently truncates records:
// every captured record is either durable or reported here. The region
// must not be executed afterwards; Close is idempotent and
// CaptureStats stays readable after it.
func (r *Region) Close() error {
	if r.closed {
		return nil
	}
	r.closed = true
	var firstErr error
	if r.sink != nil {
		var err error
		if r.sinkOwned {
			err = r.sink.Close()
		} else {
			err = r.sink.Flush()
		}
		if err != nil {
			firstErr = err
		}
	}
	if r.engineOwned {
		if c, ok := r.engine.(io.Closer); ok {
			if err := c.Close(); err != nil && firstErr == nil {
				firstErr = err
			}
		}
	}
	return firstErr
}
