package hpacml

import (
	"errors"
	"fmt"
	"time"

	"repro/internal/directive"
	"repro/internal/tensor"
)

// Sink is the pluggable capture backend of a Region — the data-
// collection twin of Engine. During accurate execution of a
// collection-mode region, the runtime gathers the invocation's inputs
// and outputs in the model layout and hands them to the sink as one
// CaptureRecord; the sink decides where and how they land — appended
// asynchronously to sharded local .gh5 files (LocalSink, the default),
// shipped in batches to a running hpacml-serve ingest endpoint
// (RemoteSink, selected by an http(s):// db URI), or filtered through
// a sampling policy first (SamplingSink, selected by the capture(...)
// directive clause). Custom sinks plug in with the WithSink option.
//
// Unlike a Region, a Sink IS safe for concurrent use: several replica
// regions (or solver ranks in one process) may share one sink, which
// is how many producers feed one training database.
type Sink interface {
	// Capture submits one invocation's training sample. The record's
	// tensors are owned by the sink from this point on (the runtime
	// gathers into freshly allocated tensors, never views of
	// application memory, precisely so asynchronous sinks need no
	// copy). Capture returns quickly — backpressure is handled by the
	// sink's block-or-drop policy, not by failing the solver.
	Capture(rec *CaptureRecord) error

	// Flush is a barrier: it returns once every record captured before
	// the call is durably handed to the backend (written and flushed
	// for local sinks, acknowledged by the server for remote ones),
	// reporting any write error the asynchronous path has hit.
	Flush() error

	// Close flushes and releases the sink. Capturing after Close is an
	// error.
	Close() error
}

// CaptureRecord is one region invocation's training sample: the
// model-layout input and output tensors and the accurate path's
// runtime. It is exactly what one collection invocation used to append
// to the database inline — inputs, outputs, runtime_ns — kept together
// so the sink can write it atomically (a crash or a mid-batch failure
// never leaves inputs without outputs).
type CaptureRecord struct {
	Region    string
	Inputs    *tensor.Tensor
	Outputs   *tensor.Tensor
	RuntimeNS float64
}

// SinkStats is a sink's own accounting, surfaced through
// Region.CaptureStats and folded into Stats (CaptureDrops,
// CaptureFlushes, RemoteCaptures) for the results schema and
// /v1/stats.
type SinkStats struct {
	// Captured counts records accepted into the sink (enqueued, not
	// necessarily durable yet — Flush for that).
	Captured int64
	// Dropped counts records rejected by backpressure (full queue under
	// the drop policy) or lost to a failed remote batch.
	Dropped int64
	// Sampled counts records filtered out by a sampling policy — a
	// deliberate thinning, counted separately from Dropped.
	Sampled int64
	// Flushes counts completed flushes (explicit barriers and the
	// periodic timer); FlushErrors counts flushes that failed.
	Flushes     int64
	FlushErrors int64
	// WriteErrors counts records the asynchronous writer failed to
	// persist.
	WriteErrors int64
	// Shards is how many shard files the local database spans.
	Shards int64
	// RemoteBatches / RemoteRecords count successful ingest POSTs and
	// the records they carried.
	RemoteBatches int64
	RemoteRecords int64
}

// Failed reports whether the sink lost or failed to persist any
// record — what a collection driver should turn into a non-zero exit.
func (s SinkStats) Failed() bool {
	return s.Dropped > 0 || s.FlushErrors > 0 || s.WriteErrors > 0
}

// sinkStatser is implemented by the built-in sinks; Region folds the
// counters into its Stats snapshot.
type sinkStatser interface{ SinkStats() SinkStats }

// ErrSinkClosed is returned by Capture on a closed sink.
var ErrSinkClosed = errors.New("hpacml: capture sink closed")

// CaptureConfig tunes the capture pipeline a region builds for its
// db() reference. The zero value is the asynchronous default: a
// single-shard local database behind a 256-record blocking queue with
// a 1-second periodic flush, no sampling.
type CaptureConfig struct {
	// ShardRecords rotates the local database to a fresh shard file
	// after this many captured invocations; 0 keeps a single file.
	// Remote sinks ignore it — the server owns its databases, so
	// rotation there is the ingest registry's policy (hpacml-serve
	// -capture-shard-records).
	ShardRecords int
	// QueueCap bounds the asynchronous queue in records (default 256).
	QueueCap int
	// DropWhenFull switches backpressure from blocking the solver to
	// dropping the record (counted in SinkStats.Dropped). Blocking
	// never loses data; dropping never stalls the solve.
	DropWhenFull bool
	// FlushEvery is the periodic flush interval of the writer
	// goroutine (default 1s; negative disables the timer, leaving
	// explicit Flush/Close as the only barriers).
	FlushEvery time.Duration
	// BatchRecords is the remote sink's records-per-POST flush unit
	// (default 16).
	BatchRecords int
	// Every / Frac impose a sampling policy (see SamplingSink): keep
	// every N-th record, or each record with probability Frac. Zero
	// values mean "no override" — the capture(...) directive clause
	// applies instead, if present.
	Every int
	Frac  float64
	// Seed drives the frac policy's RNG (0 picks a fixed default, so
	// runs are reproducible by default).
	Seed int64
}

const (
	defaultCaptureQueue = 256
	defaultCaptureFlush = time.Second
	defaultCaptureBatch = 16
)

// withDefaults fills unset tuning fields.
func (c CaptureConfig) withDefaults() CaptureConfig {
	if c.QueueCap <= 0 {
		c.QueueCap = defaultCaptureQueue
	}
	if c.FlushEvery == 0 {
		c.FlushEvery = defaultCaptureFlush
	}
	if c.BatchRecords <= 0 {
		c.BatchRecords = defaultCaptureBatch
	}
	return c
}

// NewSink builds the capture pipeline for a db reference under cfg: a
// LocalSink for a plain path, a RemoteSink for an http(s):// URI,
// wrapped in a SamplingSink when cfg carries a sampling policy. This
// is exactly what a Region does lazily on its first collection; it is
// exported so drivers can build the same pipeline around a sink they
// want to own (e.g. one shared by several regions).
func NewSink(dbRef string, cfg CaptureConfig) (Sink, error) {
	var (
		s   Sink
		err error
	)
	if directive.IsRemoteDB(dbRef) {
		s, err = NewRemoteSink(dbRef, cfg)
	} else {
		s, err = NewLocalSink(dbRef, cfg)
	}
	if err != nil {
		return nil, err
	}
	if cfg.Every > 1 || (cfg.Frac > 0 && cfg.Frac < 1) {
		s = NewSamplingSink(s, cfg)
	}
	return s, nil
}

// WithSink injects a capture sink, overriding the pipeline the region
// would derive from its db() clause. The region does not take
// ownership: Close flushes but never closes an injected sink, so one
// sink may serve several regions concurrently.
func WithSink(s Sink) Option {
	return func(r *Region) error {
		if s == nil {
			return fmt.Errorf("hpacml: WithSink(nil)")
		}
		r.sink = s
		r.sinkOwned = false
		return nil
	}
}

// WithCapture tunes the capture pipeline the region builds lazily from
// its db() clause (shard rotation, queue bound, block-or-drop policy,
// flush cadence, sampling). Non-zero sampling fields override the
// directive's capture(...) clause; everything else composes with it.
func WithCapture(cfg CaptureConfig) Option {
	return func(r *Region) error {
		if cfg.Every < 0 || cfg.Frac < 0 || cfg.Frac > 1 {
			return fmt.Errorf("hpacml: invalid capture sampling (every %d, frac %g)", cfg.Every, cfg.Frac)
		}
		r.captureCfg = cfg
		return nil
	}
}
