package hpacml

import (
	"math/rand"
	"sync"
	"sync/atomic"
)

// SamplingSink thins the capture stream before it reaches the backing
// sink — how a long-running solver collects across its whole
// trajectory without drowning the training database in near-duplicate
// records. Two policies, selected by the capture(...) directive clause
// or CaptureConfig:
//
//	capture(every:N) — keep invocation 1, N+1, 2N+1, ... (deterministic
//	                   stride; the stable choice for autoregressive
//	                   solvers whose consecutive states barely differ)
//	capture(frac:F)  — keep each invocation independently with
//	                   probability F (the unbiased choice when record
//	                   order correlates with regime)
//
// Records filtered out are counted in SinkStats.Sampled — a deliberate
// thinning, never a failure. Like every built-in sink it is safe for
// concurrent use.
type SamplingSink struct {
	next  Sink
	every int64

	// rng drives the frac policy under mu; seeded, so collections are
	// reproducible run to run.
	frac float64
	mu   sync.Mutex
	rng  *rand.Rand

	n       atomic.Int64
	sampled atomic.Int64
}

// NewSamplingSink wraps next with cfg's sampling policy (Every wins
// when both are set). A config with no policy returns a pass-through
// wrapper.
func NewSamplingSink(next Sink, cfg CaptureConfig) *SamplingSink {
	seed := cfg.Seed
	if seed == 0 {
		seed = 29
	}
	s := &SamplingSink{next: next, rng: rand.New(rand.NewSource(seed))}
	if cfg.Every > 1 {
		s.every = int64(cfg.Every)
	} else if cfg.Frac > 0 && cfg.Frac < 1 {
		s.frac = cfg.Frac
	}
	return s
}

// keep applies the policy to the i-th capture (0-based).
func (s *SamplingSink) keep(i int64) bool {
	if s.every > 1 {
		return i%s.every == 0
	}
	if s.frac > 0 {
		s.mu.Lock()
		defer s.mu.Unlock()
		return s.rng.Float64() < s.frac
	}
	return true
}

// Capture forwards the record when the policy selects it.
func (s *SamplingSink) Capture(rec *CaptureRecord) error {
	i := s.n.Add(1) - 1
	if !s.keep(i) {
		s.sampled.Add(1)
		return nil
	}
	return s.next.Capture(rec)
}

// Flush forwards the barrier to the backing sink.
func (s *SamplingSink) Flush() error { return s.next.Flush() }

// Close closes the backing sink.
func (s *SamplingSink) Close() error { return s.next.Close() }

// Unwrap returns the backing sink.
func (s *SamplingSink) Unwrap() Sink { return s.next }

// SinkStats merges the backing sink's accounting with the sampling
// counter.
func (s *SamplingSink) SinkStats() SinkStats {
	var st SinkStats
	if ss, ok := s.next.(sinkStatser); ok {
		st = ss.SinkStats()
	}
	st.Sampled += s.sampled.Load()
	return st
}
