package hpacml

import (
	"math"
	"math/rand"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/h5"
	"repro/internal/nn"
	"repro/internal/tensor"
)

// quantTestNet builds the quickstart-shaped h16 MLP the acceptance
// criteria are specified against.
func quantTestNet(seed int64) *nn.Network {
	net := nn.NewNetwork(seed)
	net.Add(net.NewDense(5, 16), nn.NewActivation(nn.ActTanh), net.NewDense(16, 1))
	return net
}

func quantSlab(seed int64, rows, cols int) *tensor.Tensor {
	rng := rand.New(rand.NewSource(seed))
	d := make([]float64, rows*cols)
	for i := range d {
		d[i] = rng.NormFloat64() * 2
	}
	x, _ := tensor.FromSlice(d, rows, cols)
	return x
}

// TestFitQuantGate is the accuracy-gate table: a fit on clean
// in-distribution captures passes and stamps the verdict; an
// unreachable rtol fails and yields no calibration; NaN-poisoned
// captures fail the fit outright.
func TestFitQuantGate(t *testing.T) {
	net := quantTestNet(7)
	x := quantSlab(11, 600, 5)

	t.Run("passing", func(t *testing.T) {
		calib, err := FitQuant(net, x, QuantFitConfig{})
		if err != nil {
			t.Fatal(err)
		}
		if !calib.GatePassed() {
			t.Fatalf("gate must be stamped passing, got err %g rtol %g", calib.GateErr, calib.GateRTol)
		}
		if calib.GateRTol != 0.05 {
			t.Fatalf("default rtol 0.05, got %g", calib.GateRTol)
		}
		if math.IsNaN(calib.GateErr) || calib.GateErr <= 0 {
			t.Fatalf("gate error must be a measured positive value, got %g", calib.GateErr)
		}
	})

	t.Run("failing-rtol", func(t *testing.T) {
		calib, err := FitQuant(net, x, QuantFitConfig{RTol: 1e-9})
		if err == nil {
			t.Fatalf("int8 cannot hold rtol 1e-9; fit must refuse, got calib %+v", calib)
		}
		if calib != nil {
			t.Fatal("a failed gate must not hand back a calibration")
		}
	})

	t.Run("nan-calibration", func(t *testing.T) {
		bad := quantSlab(13, 64, 5)
		bad.Contiguous().Data()[12] = math.NaN()
		if _, err := FitQuant(net, bad, QuantFitConfig{}); err == nil {
			t.Fatal("NaN captures must fail the fit")
		}
	})

	t.Run("nan-holdout", func(t *testing.T) {
		// NaN only in the holdout rows: calibration ranges fit clean, but
		// the gate replay sees the poison and the metric goes NaN.
		d := quantSlab(17, 100, 5).Contiguous().Data()
		d[99*5] = math.NaN()
		x, _ := tensor.FromSlice(d, 100, 5)
		if _, err := FitQuant(net, x, QuantFitConfig{}); err == nil {
			t.Fatal("NaN holdout must fail the gate")
		}
	})

	t.Run("bad-config", func(t *testing.T) {
		if _, err := FitQuant(net, x, QuantFitConfig{Holdout: 1.5}); err == nil {
			t.Fatal("holdout fraction out of range must fail")
		}
		if _, err := FitQuant(net, x, QuantFitConfig{RTol: -1}); err == nil {
			t.Fatal("negative rtol must fail")
		}
		if _, err := FitQuant(net, quantSlab(1, 1, 5), QuantFitConfig{}); err == nil {
			t.Fatal("a single capture row cannot split into calibration + holdout")
		}
	})
}

// TestFitQuantFromDB runs the full offline fit: captures written to a
// sharded .gh5, fit + gate from the shards, sidecar saved beside the
// model, loaded back, and compiled into a working int8 program.
func TestFitQuantFromDB(t *testing.T) {
	dir := t.TempDir()
	net := quantTestNet(3)
	modelPath := filepath.Join(dir, "m.gmod")
	if err := net.Save(modelPath); err != nil {
		t.Fatal(err)
	}
	base := filepath.Join(dir, "caps.gh5")
	w, err := h5.NewShardWriter(base, 0, 64)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(9))
	for i := 0; i < 300; i++ {
		in := make([]float64, 5)
		for j := range in {
			in[j] = rng.NormFloat64() * 2
		}
		x, _ := tensor.FromSlice(in, 1, 5)
		y, err := net.Forward(x)
		if err != nil {
			t.Fatal(err)
		}
		sw, err := w.BeginSet()
		if err != nil {
			t.Fatal(err)
		}
		if err := h5.AppendSample(sw, "stencil", x, y, 1000); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	// The untrained test net's outputs hover near zero, which inflates
	// the per-row relative metric; rtol 0.1 is the configured gate here.
	calib, err := FitQuantFromDB(base, "stencil", modelPath, QuantFitConfig{Mode: nn.QuantPercentile, Q: 0.001, RTol: 0.1})
	if err != nil {
		t.Fatal(err)
	}
	if !calib.GatePassed() || calib.Segments() != 2 {
		t.Fatalf("fit: %d segments, gate err %g rtol %g", calib.Segments(), calib.GateErr, calib.GateRTol)
	}
	sidecar := nn.QuantPath(modelPath)
	if err := calib.SaveQuant(sidecar); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(sidecar); err != nil {
		t.Fatal(err)
	}
	loaded, err := nn.LoadQuant(sidecar)
	if err != nil {
		t.Fatal(err)
	}
	fwd, err := nn.NewForwardI8(net, loaded)
	if err != nil {
		t.Fatal(err)
	}
	in := quantSlab(5, 32, 5).Contiguous().Data()
	ref, err := net.Forward(quantSlab(5, 32, 5))
	if err != nil {
		t.Fatal(err)
	}
	got := make([]float64, 32)
	if err := fwd.Forward(got, in, 32); err != nil {
		t.Fatal(err)
	}
	if e := meanRelL2(got, ref.Contiguous().Data(), 32, 1); !(e < 0.1) {
		t.Fatalf("sidecar-compiled int8 path drifted: mean relative L2 %g", e)
	}

	if _, err := FitQuantFromDB(base, "no-such-region", modelPath, QuantFitConfig{}); err == nil {
		t.Fatal("unknown region must fail")
	}
}

// TestMeanRelL2 pins the gate metric itself.
func TestMeanRelL2(t *testing.T) {
	if e := meanRelL2([]float64{1, 2}, []float64{1, 2}, 2, 1); e != 0 {
		t.Fatalf("identical slabs: %g", e)
	}
	// Equal-norm rows leave the RMS floor inert: one row 10%% off, one
	// exact, mean 5%%.
	if e := meanRelL2([]float64{2.2, 2}, []float64{2, 2}, 2, 1); math.Abs(e-0.05) > 1e-12 {
		t.Fatalf("mean of {0.1, 0}: %g", e)
	}
	// A near-zero reference row measures against the holdout's RMS row
	// norm (sqrt(2) here), not its own vanishing norm.
	if e, want := meanRelL2([]float64{0.2, 2}, []float64{0, 2}, 2, 1), 0.2/math.Sqrt(2)/2; math.Abs(e-want) > 1e-12 {
		t.Fatalf("floored row: %g, want %g", e, want)
	}
	if e := meanRelL2([]float64{math.NaN(), 2}, []float64{1, 2}, 2, 1); !math.IsNaN(e) {
		t.Fatalf("NaN prediction must poison the mean, got %g", e)
	}
	if e := meanRelL2([]float64{math.Inf(1), 2}, []float64{1, 2}, 2, 1); !math.IsNaN(e) {
		t.Fatalf("Inf prediction must poison the mean, got %g", e)
	}
	if e := meanRelL2(nil, nil, 0, 1); !math.IsNaN(e) {
		t.Fatalf("empty holdout must not pass, got %g", e)
	}
}
