package hpacml

import (
	"fmt"
	"math"

	"repro/internal/h5"
	"repro/internal/nn"
	"repro/internal/tensor"
)

// Int8 calibration fitting: the offline step that turns a capture
// database into a ".quant" sidecar the serving path can trust. It
// mirrors the guardrail's fit step — read the region's captured inputs
// from the shard set, fit on them, save a sidecar beside the model —
// with one addition the guardrail does not need: a mandatory accuracy
// gate. Quantization is a lossy rewrite of the model, so the fit
// replays held-out captures through both the int8 program and the
// float64 reference and refuses to produce a sidecar when the mean
// relative L2 between them exceeds the configured tolerance. The gate
// verdict is stamped into the sidecar, and LocalEngine re-checks it at
// load, so neither a failed fit nor a hand-edited sidecar can put an
// unvetted int8 path into serving.

// QuantFitConfig configures FitQuantFromDB.
type QuantFitConfig struct {
	// Mode is nn.QuantMaxAbs (default) or nn.QuantPercentile; Q is the
	// tail fraction per side in percentile mode.
	Mode string
	Q    float64
	// RTol is the accuracy gate: the fitted int8 path's mean relative
	// L2 against the float64 reference on held-out captures must not
	// exceed it. 0 means the default of 0.05.
	RTol float64
	// Holdout is the trailing fraction of capture rows reserved for the
	// gate (never calibrated on). 0 means the default of 0.2.
	Holdout float64
}

// quantGateMaxRows caps the gate's holdout replay; beyond this the
// error estimate is stable and the fit step should stay cheap.
const quantGateMaxRows = 4096

// FitQuantFromDB fits an int8 calibration for the model from the
// "inputs" dataset of a region's capture database (all shards merged):
// the leading rows calibrate the activation ranges, the trailing
// Holdout fraction replays through the quantized and float64 paths to
// measure the gate error. The returned calibration has the gate verdict
// stamped; if the error exceeds RTol, an error is returned instead and
// no calibration escapes — the caller has nothing to save, which is the
// point.
func FitQuantFromDB(dbPath, region, modelPath string, cfg QuantFitConfig) (*nn.QuantCalib, error) {
	f, err := h5.OpenShards(dbPath)
	if err != nil {
		return nil, err
	}
	x, err := f.Read(region, "inputs")
	if err != nil {
		return nil, err
	}
	net, err := nn.Load(modelPath)
	if err != nil {
		return nil, err
	}
	return FitQuant(net, x, cfg)
}

// FitQuant is FitQuantFromDB on an already-loaded network and capture
// slab: rows along dim 0, model-layout features flattened from the
// rest.
func FitQuant(net *nn.Network, x *tensor.Tensor, cfg QuantFitConfig) (*nn.QuantCalib, error) {
	if x == nil || x.Rank() < 2 || x.Dim(0) < 2 {
		return nil, fmt.Errorf("hpacml: quant fit wants at least 2 capture rows, shaped [rows, features...]")
	}
	rtol := cfg.RTol
	if rtol == 0 {
		rtol = 0.05
	}
	if rtol < 0 || math.IsNaN(rtol) {
		return nil, fmt.Errorf("hpacml: quant gate rtol %g invalid", cfg.RTol)
	}
	holdout := cfg.Holdout
	if holdout == 0 {
		holdout = 0.2
	}
	if holdout <= 0 || holdout >= 1 {
		return nil, fmt.Errorf("hpacml: quant holdout fraction %g out of (0, 1)", cfg.Holdout)
	}
	rows := x.Dim(0)
	features := x.Len() / rows
	nHold := int(float64(rows) * holdout)
	if nHold < 1 {
		nHold = 1
	}
	nCalib := rows - nHold
	if nCalib < 1 {
		return nil, fmt.Errorf("hpacml: %d capture rows leave no calibration split at holdout %g", rows, holdout)
	}
	data := x.Contiguous().Data()
	calibX, err := tensor.Wrap(data[:nCalib*features], nCalib, features)
	if err != nil {
		return nil, err
	}
	calib, err := nn.CalibrateI8(net, calibX, nn.CalibConfig{Mode: cfg.Mode, Q: cfg.Q})
	if err != nil {
		return nil, err
	}
	fwd, err := nn.NewForwardI8(net, calib)
	if err != nil {
		return nil, err
	}
	if nHold > quantGateMaxRows {
		nHold = quantGateMaxRows
	}
	hold := data[nCalib*features : (nCalib+nHold)*features]
	holdX, err := tensor.Wrap(hold, nHold, features)
	if err != nil {
		return nil, err
	}
	ref, err := net.Forward(holdX)
	if err != nil {
		return nil, err
	}
	refData := ref.Contiguous().Data()
	outDim := calib.OutDim
	pred := make([]float64, nHold*outDim)
	if err := fwd.Forward(pred, hold, nHold); err != nil {
		return nil, err
	}
	calib.GateErr = meanRelL2(pred, refData, nHold, outDim)
	calib.GateRTol = rtol
	if !calib.GatePassed() {
		return nil, fmt.Errorf("hpacml: int8 accuracy gate failed: mean relative L2 %g vs float64 on %d held-out rows exceeds rtol %g",
			calib.GateErr, nHold, rtol)
	}
	return calib, nil
}

// meanRelL2 is the gate metric: the mean over rows of
// ‖pred−ref‖₂ / max(‖ref‖₂, floor), where floor is the RMS row norm of
// the reference across the holdout. The floor is the absolute-tolerance
// half of an allclose-style check: a row whose reference is near zero
// measures its error against the output's typical scale instead of
// dividing by noise — without it, a surrogate whose outputs cross zero
// (an option price at the strike) reads as failing however accurate the
// quantization is. Any non-finite prediction poisons the mean to NaN,
// which never passes a gate.
func meanRelL2(pred, ref []float64, rows, cols int) float64 {
	if rows == 0 {
		return math.NaN()
	}
	sumSq := 0.0
	for _, v := range ref[:rows*cols] {
		sumSq += v * v
	}
	floor := math.Max(math.Sqrt(sumSq/float64(rows)), 1e-12)
	total := 0.0
	for r := 0; r < rows; r++ {
		var dn, rn float64
		for j := 0; j < cols; j++ {
			d := pred[r*cols+j] - ref[r*cols+j]
			dn += d * d
			rn += ref[r*cols+j] * ref[r*cols+j]
		}
		rel := math.Sqrt(dn) / math.Max(math.Sqrt(rn), floor)
		if math.IsInf(rel, 0) {
			return math.NaN()
		}
		total += rel
	}
	return total / float64(rows)
}
