package hpacml_test

import (
	"fmt"
	"log"
	"os"
	"path/filepath"

	hpacml "repro"

	"repro/internal/nn"
)

// Example_executeBatch prices several option chunks through one batched
// surrogate call. Each stage callback loads one chunk's parameters into
// the bound arrays; the runtime gathers all chunks into a single staging
// tensor, runs the model once, and scatters each chunk's prices back
// before its finish callback fires. Outputs are bit-identical to calling
// Execute once per chunk.
func Example_executeBatch() {
	dir, err := os.MkdirTemp("", "hpacml-batch-")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	// A stand-in surrogate: 3 option parameters -> 1 price.
	modelPath := filepath.Join(dir, "options.gmod")
	net := nn.NewNetwork(21)
	net.Add(net.NewDense(3, 16), nn.NewActivation(nn.ActTanh), net.NewDense(16, 1))
	if err := net.Save(modelPath); err != nil {
		log.Fatal(err)
	}

	const chunk = 4
	s := make([]float64, chunk)
	x := make([]float64, chunk)
	tt := make([]float64, chunk)
	prices := make([]float64, chunk)
	region, err := hpacml.NewRegion("options",
		hpacml.Directives(fmt.Sprintf(`
tensor functor(opt_in: [i, 0:3] = ([i]))
tensor functor(price_out: [i, 0:1] = ([i]))
tensor map(to: opt_in(S[0:NOPT], X[0:NOPT], T[0:NOPT]))
ml(infer) in(S, X, T) out(price_out(prices[0:NOPT])) model(%q)
`, modelPath)),
		hpacml.BindInt("NOPT", chunk),
		hpacml.BindArray("S", s, chunk),
		hpacml.BindArray("X", x, chunk),
		hpacml.BindArray("T", tt, chunk),
		hpacml.BindArray("prices", prices, chunk),
	)
	if err != nil {
		log.Fatal(err)
	}
	defer region.Close()

	const nChunks = 3
	var total float64
	err = region.ExecuteBatch(nChunks,
		func(i int) error { // stage chunk i's parameters
			for j := 0; j < chunk; j++ {
				s[j] = 10 + float64(i*chunk+j)
				x[j] = 25
				tt[j] = 1 + float64(i)
			}
			return nil
		},
		func(i int) error { // chunk i's prices are now in place
			for _, p := range prices {
				total += p
			}
			return nil
		})
	if err != nil {
		log.Fatal(err)
	}

	st := region.Stats()
	fmt.Printf("invocations: %d in %d batch\n", st.BatchedInvocations, st.Batches)
	fmt.Printf("total priced: %.4f\n", total)
	// Output:
	// invocations: 3 in 1 batch
	// total priced: 17.7930
}
